"""Batched multi-client compute engine: lockstep ``(clients, params)`` kernels.

A synchronous round at ``city``/``metro`` scale runs dozens of clients
through the same architecture at the same time; the per-client engine
executes them one at a time through many small numpy calls.  This module
stacks the coincident clients' flat section vectors into one
``(lanes, params)`` arena per section and runs forward / backward / loss /
optimiser steps with a leading *lane* (client) dimension, so one round
step costs a few large kernels instead of ``N`` small ones.

Parity contract
---------------
Every batched kernel mirrors the exact floating-point operation order of
its per-client counterpart in :mod:`repro.nn.layers`,
:mod:`repro.nn.loss` and :mod:`repro.nn.optim`, relying only on
transformations that are bitwise-exact per lane (stacked GEMMs over
independent slices, elementwise ops, per-row reductions).  The
per-client path therefore stays on as the *parity oracle*: a batched run
must reproduce its summaries bit for bit, which the test suite pins.

Timing is untouched: batch durations still come from analytic
:class:`~repro.nn.model.PhaseTrace` FLOP counts (identical to what the
per-client engine would record), so the discrete-event loop — stragglers,
deadlines, churn, transport faults — behaves exactly as before.

Cohorts and fallback
--------------------
:class:`BatchedClientExecutor` groups a round's selected clients into
*lockstep cohorts*: same architecture, dtype, optimiser family and
hyper-parameters, input shape, and uniform batch-size sequence.  Clients
whose execution diverges from the cohort — mid-round freeze-and-offload,
checkpoint capture, disconnects, give-up budgets — *materialize* their
lane back into the per-client buffers (fast copy when the cohort is at
their step, per-client replay otherwise) and continue on the oracle
path.  Anything that cannot join a cohort (ragged epoch tails, unknown
optimisers, late or duplicated training requests) silently falls back to
the per-client path, which is always correct.

All kernels go through the :class:`~repro.nn.backend.ArrayBackend` seam
(numpy today; a cupy/torch backend can be registered without touching
the federation layer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import BatchLoader
from repro.nn.backend import ArrayBackend, get_array_backend
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, ResidualBlock
from repro.nn.model import Phase, PhaseTrace, SplitCNN
from repro.nn.optim import ProximalSGD, SGD

#: ``batched_execution="auto"`` batches rounds with at least this many
#: selected clients; smaller rounds stay on the per-client path where the
#: dispatch overhead being amortised is negligible anyway.
BATCHED_AUTO_MIN_CLIENTS = 16


def _scratch(current: Optional[np.ndarray], shape: Tuple[int, ...], dtype, xp) -> np.ndarray:
    """Return ``current`` if it matches ``shape``/``dtype``, else a new buffer."""
    if current is not None and current.shape == shape and current.dtype == dtype:
        return current
    return xp.empty(shape, dtype=dtype)


# ---------------------------------------------------------------------------
# Analytic per-phase FLOP counts
# ---------------------------------------------------------------------------
def _conv_flops(layer: Conv2D, n: int, in_shape: Tuple[int, ...]) -> Tuple[int, int, Tuple[int, ...]]:
    out_shape = layer.output_shape(in_shape)
    _, out_h, out_w = out_shape
    k = layer.kernel_size
    macs = n * out_h * out_w * layer.out_channels * layer.in_channels * k * k
    return 2 * macs, 4 * macs, out_shape


def _layer_flops(layer, n: int, in_shape: Tuple[int, ...]) -> Tuple[int, int, Tuple[int, ...]]:
    """``(forward_flops, backward_flops, out_shape)`` for one batch of ``n``.

    Mirrors the ``last_forward_flops``/``last_backward_flops`` accounting of
    each layer in :mod:`repro.nn.layers` exactly (pinned by tests), so a
    batched client can hand the cost model the same :class:`PhaseTrace` the
    per-client engine would have recorded — without running the layer.
    """
    size_in = n * int(np.prod(in_shape))
    if isinstance(layer, Conv2D):
        return _conv_flops(layer, n, in_shape)
    if isinstance(layer, MaxPool2D):
        return size_in, size_in, layer.output_shape(in_shape)
    if isinstance(layer, ReLU):
        return size_in, size_in, in_shape
    if isinstance(layer, Flatten):
        return 0, 0, layer.output_shape(in_shape)
    if isinstance(layer, Dense):
        macs = n * layer.in_features * layer.out_features
        return 2 * macs, 4 * macs, (layer.out_features,)
    if isinstance(layer, ResidualBlock):
        c1_fwd, c1_bwd, s1 = _conv_flops(layer.conv1, n, in_shape)
        relu1 = n * int(np.prod(s1))
        c2_fwd, c2_bwd, s2 = _conv_flops(layer.conv2, n, s1)
        proj_fwd = proj_bwd = 0
        if layer.proj is not None:
            proj_fwd, proj_bwd, _ = _conv_flops(layer.proj, n, in_shape)
        out_size = n * int(np.prod(s2))
        # forward: conv1 + relu1 + conv2 + proj + relu_out + (h + shortcut)
        fwd = c1_fwd + relu1 + c2_fwd + proj_fwd + out_size + out_size
        # backward: relu_out + conv2 + relu1 + conv1 + proj + grad_out.size
        bwd = c1_bwd + relu1 + c2_bwd + proj_bwd + out_size + out_size
        return fwd, bwd, s2
    raise TypeError(f"no analytic FLOP model for layer {type(layer).__name__}")


def phase_flops(model: SplitCNN, batch_size: int, input_shape: Sequence[int]) -> PhaseTrace:
    """Analytic :class:`PhaseTrace` of one unfrozen training batch.

    Bitwise identical to the trace ``SplitCNN.train_batch`` records (FLOP
    counts are shape-derived integers, never data-dependent).  Needed
    because a batched client reports its batch duration *before* the
    cohort's first wave has computed anything.
    """
    trace = PhaseTrace()
    shape = tuple(int(dim) for dim in input_shape)
    for layer in model.feature_layers:
        fwd, bwd, shape = _layer_flops(layer, batch_size, shape)
        trace.add(Phase.FORWARD_FEATURES, fwd)
        trace.add(Phase.BACKWARD_FEATURES, bwd)
    for layer in model.classifier_layers:
        fwd, bwd, shape = _layer_flops(layer, batch_size, shape)
        trace.add(Phase.FORWARD_CLASSIFIER, fwd)
        trace.add(Phase.BACKWARD_CLASSIFIER, bwd)
    return trace


# ---------------------------------------------------------------------------
# Batched layer kernels (exact op-order mirrors of repro.nn.layers)
# ---------------------------------------------------------------------------
class _BatchedLayer:
    """Base for lane-stacked layer mirrors.

    ``params``/``grads`` are views into the owning model's
    ``(lanes, params)`` section arenas, shaped ``(lanes,) + param_shape``.
    """

    def __init__(self, backend: ArrayBackend) -> None:
        self.backend = backend
        self.xp = backend.xp

    def forward(self, x):
        raise NotImplementedError

    def backward(self, grad_out, need_input_grad: bool = True):
        raise NotImplementedError


_GEMM_PROBE_CACHE: Dict[Tuple[int, int, int, str], Tuple[bool, str, bool]] = {}


def _probe_fast_gemms(rows: int, ckk: int, oc: int, dtype) -> Tuple[bool, str, bool]:
    """Check the channel-major GEMM orientations bitwise at one shape.

    BLAS picks its blocking from shapes and operand layouts, never from
    values, so a random probe at the exact ``(rows, ckk, oc, dtype)``
    decides equality for every input at that shape.  Compares the per-lane
    channel-major 2-D GEMMs (exactly as issued by :class:`_BatchedConv2D`'s
    fast path, transposed-view operands included) against the per-client
    oracle's 2-D GEMMs; a failing orientation routes that GEMM through the
    oracle's exact operand layout instead.

    Returns ``(fwd_ok, gw_mode, dc_ok)``.  ``gw_mode`` picks between two
    fast weight-gradient orientations: ``"csT"`` computes the transposed
    gradient ``colsT @ gradT.T`` (a wide-N GEMM, typically ~2x the speed of
    the reduction-heavy direct form on OpenBLAS) and ``"gT"`` the direct
    ``gradT @ colsT.T``; ``"slow"`` falls back to the oracle layout.
    """
    key = (rows, ckk, oc, np.dtype(dtype).name)
    cached = _GEMM_PROBE_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0xC0FFEE)
    colsT = np.ascontiguousarray(rng.standard_normal((ckk, rows)).astype(dtype))
    w_mat = np.ascontiguousarray(rng.standard_normal((oc, ckk)).astype(dtype))
    gradT = np.ascontiguousarray(rng.standard_normal((oc, rows)).astype(dtype))
    cols = np.ascontiguousarray(colsT.T)  # oracle layout (rows, ckk)
    grad = np.ascontiguousarray(gradT.T)  # oracle layout (rows, oc)
    fwd_ok = np.array_equal(np.matmul(w_mat, colsT), (cols @ w_mat.T).T)
    gw_oracle = grad.T @ cols
    if np.array_equal(np.matmul(colsT, gradT.T).T, gw_oracle):
        gw_mode = "csT"
    elif np.array_equal(np.matmul(gradT, colsT.T), gw_oracle):
        gw_mode = "gT"
    else:
        gw_mode = "slow"
    dc_ok = np.array_equal(np.matmul(w_mat.T, gradT), (grad @ w_mat).T)
    result = (fwd_ok, gw_mode, dc_ok)
    _GEMM_PROBE_CACHE[key] = result
    return result


_GB_PROBE_CACHE: Dict[Tuple[int, int, str], bool] = {}


def _probe_gb_reduce(rows: int, oc: int, dtype) -> bool:
    """Check ``einsum('ro->o')`` against ``sum(axis=0)`` bitwise at one shape.

    The bias gradient must reduce a contiguous ``(rows, oc)`` buffer along
    its first axis in the oracle's pairwise order.  ``np.einsum`` walks the
    same order several times faster than ``ndarray.sum`` for the thin
    trailing axes conv layers produce, but that equality is an
    implementation detail — so it is probed per shape, like the GEMMs.
    """
    key = (rows, oc, np.dtype(dtype).name)
    cached = _GB_PROBE_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(0xB1A5)
    buf = np.ascontiguousarray(rng.standard_normal((rows, oc)).astype(dtype))
    result = bool(np.array_equal(np.einsum("ro->o", buf), buf.sum(axis=0)))
    _GB_PROBE_CACHE[key] = result
    return result


class _BatchedConv2D(_BatchedLayer):
    """Lane-stacked Conv2D over channel-major ``(L, C, N, H, W)`` activations.

    The per-client oracle keeps activations sample-major and pays a strided
    gather or transpose in im2col, after the forward GEMM, and in every
    col2im pass.  The batched mirror leads with the channel axis instead, so
    the im2col copy writes contiguous ``(n*oh*ow)`` rows, the forward GEMM
    emits channel-major output directly (no transpose pass), and col2im
    reads contiguous slabs.  Layout is free to differ from the oracle;
    values are not: operand values, GEMM dot order (``(c, k, k)`` along K)
    and the per-element ascending ``(i, j)`` col2im addition order all
    match the scalar path bitwise.  The transposed GEMM orientations are
    only shape-wise equal to the oracle's, so each is verified by
    :func:`_probe_fast_gemms` at the exact working shape; a failing probe
    routes that GEMM through the oracle's operand layout (at the cost of a
    transposed copy), keeping every shape bitwise regardless.

    GEMMs and col2im run lane-at-a-time over 2-D operands rather than one
    stacked 3-D call: each lane's im2col block and grad-cols buffer is
    consumed while still cache-hot, and the 2-D calls go straight to BLAS
    without the gufunc batch loop.  Per-lane results are bitwise the same
    as the stacked form (the batch loop issues the identical 2-D GEMMs).
    """

    def __init__(self, template: Conv2D, params, grads, backend: ArrayBackend) -> None:
        super().__init__(backend)
        self.in_channels = template.in_channels
        self.out_channels = template.out_channels
        self.kernel_size = template.kernel_size
        self.stride = template.stride
        self.padding = template.padding
        self.W = params["W"]  # (L, oc, ic, k, k)
        self.b = params["b"]  # (L, oc)
        self.gW = grads["W"]
        self.gb = grads["b"]
        self.lanes = int(self.W.shape[0])
        self._colsT: Optional[np.ndarray] = None
        self._pad: Optional[np.ndarray] = None
        self._interior: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._out_sm: Optional[np.ndarray] = None
        self._cols_sm: Optional[np.ndarray] = None
        self._gbuf: Optional[np.ndarray] = None
        self._gw: Optional[np.ndarray] = None
        self._grad_colsT: Optional[np.ndarray] = None
        self._grad_cols_sm: Optional[np.ndarray] = None
        self._cols_sm_lane: Optional[np.ndarray] = None
        self._gcols_lane: Optional[np.ndarray] = None
        self._gcols_sm_lane: Optional[np.ndarray] = None
        self._gwT_lane: Optional[np.ndarray] = None
        self._gb_row: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None
        self._gx: Optional[np.ndarray] = None
        self._cache_colsT: Optional[np.ndarray] = None
        self._cache_cols_sm: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[Tuple[int, ...]] = None

    def stage_input(self, shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
        """Interior view of the pad scratch for a ``shape``-shaped input.

        The producing layer writes its output straight into this view, so
        ``_padded`` can skip the separate interior copy (the values are
        identical either way — only the copy is fused out).  Returns
        ``None`` when this conv has no pad buffer to stage into.
        """
        p = self.padding
        if p == 0:
            return None
        L, c, n, h, w = shape
        padded_shape = (L, c, n, h + 2 * p, w + 2 * p)
        if (
            self._pad is None
            or self._pad.shape != padded_shape
            or self._pad.dtype != dtype
        ):
            self._pad = self.xp.zeros(padded_shape, dtype=dtype)
            self._interior = None
        if self._interior is None:
            self._interior = self._pad[:, :, :, p:-p, p:-p]
        return self._interior

    def _padded(self, x):
        p = self.padding
        if p == 0:
            return x
        if x is self._interior:
            # The producer staged its output directly into the interior;
            # the border is already zero, nothing to copy.
            return self._pad
        L, c, n, h, w = x.shape
        shape = (L, c, n, h + 2 * p, w + 2 * p)
        if self._pad is None or self._pad.shape != shape or self._pad.dtype != x.dtype:
            # Zeroed once; only the interior is rewritten per wave, the
            # border stays zero (same trick as the oracle's pad buffer).
            self._pad = self.xp.zeros(shape, dtype=x.dtype)
            self._interior = None
        self._pad[:, :, :, p:-p, p:-p] = x
        return self._pad

    def _im2colT(self, x):
        """Transposed im2col: ``(L, c*k*k, n*oh*ow)`` with contiguous rows."""
        xp = self.xp
        L, c, n, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        rows = n * out_h * out_w
        colsT = self._colsT = _scratch(self._colsT, (L, c * k * k, rows), x.dtype, xp)
        padded = self._padded(x)
        colsT7 = colsT.reshape(L, c, k, k, n, out_h, out_w)
        if xp is np:
            # One overlapping window view + one copy: the nditer walks the
            # destination in C order, so each (lane, channel) image block is
            # read cache-hot across all k*k taps.
            sL, sc, sn, sH, sW = padded.strides
            windows = np.lib.stride_tricks.as_strided(
                padded,
                shape=(L, c, k, k, n, out_h, out_w),
                strides=(sL, sc, sH, sW, sn, s * sH, s * sW),
            )
            np.copyto(colsT7, windows)
        else:
            for i in range(k):
                i_max = i + s * out_h
                for j in range(k):
                    j_max = j + s * out_w
                    xp.copyto(colsT7[:, :, i, j], padded[:, :, :, i:i_max:s, j:j_max:s])
        return colsT

    def _cols_oracle(self, colsT):
        """Sample-major ``(L, rows, ckk)`` cols in the oracle's layout.

        Materialized only when a probe rejects a fast orientation; cached
        for the wave so forward and backward share one transpose.
        """
        if self._cache_cols_sm is not None:
            return self._cache_cols_sm
        L, ckk, rows = colsT.shape
        cols = self._cols_sm = _scratch(self._cols_sm, (L, rows, ckk), colsT.dtype, self.xp)
        self.xp.copyto(cols, colsT.transpose(0, 2, 1))
        self._cache_cols_sm = cols
        return cols

    def _lane_cols_sm(self, colsT, lane):
        """One lane's cols in the oracle's sample-major ``(rows, ckk)`` layout."""
        if self._cache_cols_sm is not None:
            return self._cache_cols_sm[lane]
        _, ckk, rows = colsT.shape
        buf = self._cols_sm_lane = _scratch(
            self._cols_sm_lane, (rows, ckk), colsT.dtype, self.xp
        )
        self.xp.copyto(buf, colsT[lane].T)
        return buf

    def forward(self, x):
        xp = self.xp
        L, c, n, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        rows = n * out_h * out_w
        ckk = c * k * k
        oc = self.out_channels
        fast_fwd, _, _ = _probe_fast_gemms(rows, ckk, oc, x.dtype)
        w_mat = self.W.reshape(L, oc, ckk)
        self._out = _scratch(self._out, (L, oc, rows), x.dtype, xp)
        out = self._out
        self._cache_cols_sm = None
        if xp is np and fast_fwd:
            # Lane-interleaved: copy one lane's windows, then GEMM that lane
            # while its im2col block is still cache-hot.
            colsT = self._colsT = _scratch(self._colsT, (L, ckk, rows), x.dtype, xp)
            padded = self._padded(x)
            colsT7 = colsT.reshape(L, c, k, k, n, out_h, out_w)
            sL, sc, sn, sH, sW = padded.strides
            windows = np.lib.stride_tricks.as_strided(
                padded,
                shape=(L, c, k, k, n, out_h, out_w),
                strides=(sL, sc, sH, sW, sn, s * sH, s * sW),
            )
            for lane in range(L):
                np.copyto(colsT7[lane], windows[lane])
                np.matmul(w_mat[lane], colsT[lane], out=out[lane])
                out[lane] += self.b[lane, :, None]
        else:
            colsT = self._im2colT(x)
            if fast_fwd:
                xp.matmul(w_mat, colsT, out=out)
            else:
                cols = self._cols_oracle(colsT)
                self._out_sm = _scratch(self._out_sm, (L, rows, oc), x.dtype, xp)
                out_sm = xp.matmul(cols, w_mat.transpose(0, 2, 1), out=self._out_sm)
                xp.copyto(out, out_sm.transpose(0, 2, 1))
            out += self.b[:, :, None]
        self._cache_colsT = colsT
        self._cache_x_shape = x.shape
        return out.reshape(L, oc, n, out_h, out_w)

    def backward(self, grad_out, need_input_grad: bool = True):
        if self._cache_colsT is None or self._cache_x_shape is None:
            raise RuntimeError("_BatchedConv2D.backward called before forward")
        xp = self.xp
        L, oc, n, out_h, out_w = grad_out.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        rows = n * out_h * out_w
        grad3 = grad_out.reshape(L, oc, rows)
        colsT = self._cache_colsT
        ckk = colsT.shape[1]
        _, gw_mode, fast_dc = _probe_fast_gemms(rows, ckk, oc, grad3.dtype)

        grad_w = self._gw = _scratch(self._gw, (L, oc, ckk), grad3.dtype, xp)
        w_mat = self.W.reshape(L, oc, ckk)
        result_dtype = np.result_type(grad3.dtype, w_mat.dtype)
        _, c, _, h, w = self._cache_x_shape

        if xp is np:
            # Lane-at-a-time: each lane's staging, grad-cols and col2im
            # accumulator live in small reused buffers that are consumed
            # before the next lane evicts them, instead of materializing the
            # full (L, ...) blocks.  The oracle reduces a row-major
            # (rows, oc) buffer along its first axis for gb; the per-lane
            # staging keeps that layout (and a per-lane 2-D reduce is
            # bitwise the stacked 3-D one), so the reduction order matches.
            gbuf_l = self._gbuf = _scratch(self._gbuf, (rows, oc), grad3.dtype, xp)
            gb_fast = _probe_gb_reduce(rows, oc, grad3.dtype)
            gb_row = self._gb_row = _scratch(self._gb_row, (oc,), grad3.dtype, xp)
            gc = gc7 = acc_l = gx = None
            if need_input_grad:
                gc = self._gcols_lane = _scratch(
                    self._gcols_lane, (ckk, rows), result_dtype, xp
                )
                gc7 = gc.reshape(c, k, k, n, out_h, out_w)
                acc_l = self._acc = _scratch(
                    self._acc, (c, n, h + 2 * p, w + 2 * p), result_dtype, xp
                )
                gx = self._gx = _scratch(self._gx, (L, c, n, h, w), result_dtype, xp)
            gwT = None
            if gw_mode == "csT":
                gwT = self._gwT_lane = _scratch(
                    self._gwT_lane, (ckk, oc), grad3.dtype, xp
                )
            for lane in range(L):
                np.copyto(gbuf_l, grad3[lane].T)
                if gw_mode == "csT":
                    np.matmul(colsT[lane], grad3[lane].T, out=gwT)
                    np.copyto(grad_w[lane], gwT.T)
                elif gw_mode == "gT":
                    np.matmul(grad3[lane], colsT[lane].T, out=grad_w[lane])
                else:
                    np.matmul(
                        gbuf_l.T, self._lane_cols_sm(colsT, lane), out=grad_w[lane]
                    )
                if gb_fast:
                    np.einsum("ro->o", gbuf_l, out=gb_row)
                    self.gb[lane] += gb_row
                else:
                    self.gb[lane] += gbuf_l.sum(axis=0)
                if not need_input_grad:
                    continue
                if fast_dc:
                    np.matmul(w_mat[lane].T, grad3[lane], out=gc)
                else:
                    gsm = self._gcols_sm_lane = _scratch(
                        self._gcols_sm_lane, (rows, ckk), result_dtype, xp
                    )
                    np.matmul(gbuf_l, w_mat[lane], out=gsm)
                    np.copyto(gc, gsm.T)
                acc_l.fill(0)
                for i in range(k):
                    i_max = i + s * out_h
                    for j in range(k):
                        j_max = j + s * out_w
                        acc_l[:, :, i:i_max:s, j:j_max:s] += gc7[:, i, j]
                if p > 0:
                    np.copyto(gx[lane], acc_l[:, :, p:-p, p:-p])
                else:
                    np.copyto(gx[lane], acc_l)
            self.gW += grad_w.reshape(self.gW.shape)
            return gx if need_input_grad else None

        # Generic-backend path: stacked 3-D kernels, full-size scratch.
        gbuf = self._gbuf = _scratch(self._gbuf, (L, rows, oc), grad3.dtype, xp)
        xp.copyto(gbuf, grad3.transpose(0, 2, 1))
        acc = None
        if need_input_grad:
            acc_shape = (L, c, n, h + 2 * p, w + 2 * p)
            acc = self._acc = _scratch(self._acc, acc_shape, result_dtype, xp)
            acc.fill(0)
        if gw_mode == "csT":
            gwT = xp.matmul(colsT, grad3.transpose(0, 2, 1))
            xp.copyto(grad_w, gwT.transpose(0, 2, 1))
        elif gw_mode == "gT":
            xp.matmul(grad3, colsT.transpose(0, 2, 1), out=grad_w)
        else:
            xp.matmul(gbuf.transpose(0, 2, 1), self._cols_oracle(colsT), out=grad_w)
        if need_input_grad:
            self._grad_colsT = _scratch(
                self._grad_colsT, (L, ckk, rows), result_dtype, xp
            )
            if fast_dc:
                grad_colsT = xp.matmul(
                    w_mat.transpose(0, 2, 1), grad3, out=self._grad_colsT
                )
            else:
                self._grad_cols_sm = _scratch(
                    self._grad_cols_sm, (L, rows, ckk), result_dtype, xp
                )
                grad_cols_sm = xp.matmul(gbuf, w_mat, out=self._grad_cols_sm)
                grad_colsT = self._grad_colsT
                xp.copyto(grad_colsT, grad_cols_sm.transpose(0, 2, 1))
            gcT7 = grad_colsT.reshape(L, c, k, k, n, out_h, out_w)
            for i in range(k):
                i_max = i + s * out_h
                for j in range(k):
                    j_max = j + s * out_w
                    acc[:, :, :, i:i_max:s, j:j_max:s] += gcT7[:, :, i, j]

        self.gW += grad_w.reshape(self.gW.shape)
        self.gb += gbuf.sum(axis=1)
        if not need_input_grad:
            return None
        self._gx = _scratch(self._gx, (L, c, n, h, w), result_dtype, xp)
        if p > 0:
            xp.copyto(self._gx, acc[:, :, :, p:-p, p:-p])
        else:
            xp.copyto(self._gx, acc)
        return self._gx


class _BatchedMaxPool2D(_BatchedLayer):
    """Lane-stacked MaxPool2D over channel-major ``(L, C, N, H, W)`` input.

    Window maxima are computed by reducing the innermost (contiguous)
    window axis first.  ``np.maximum`` keeps its first operand on ties, so
    any bracketing of the window fold selects the leftmost maximal element
    (and the leftmost NaN) — bitwise identical to the oracle's sequential
    column sweep.  Only the argmax tie-break is order-pinned, and the
    reverse equality sweep below replicates it exactly.
    """

    def __init__(self, template: MaxPool2D, backend: ArrayBackend) -> None:
        super().__init__(backend)
        self.pool_size = template.pool_size
        if self.pool_size * self.pool_size > 127:
            raise ValueError("MaxPool2D pool_size too large for int8 window slots")
        # When the next layer is a padded conv, its pad-scratch interior is
        # used as this pool's output buffer, fusing out the conv's pad copy.
        self.sink: Optional[_BatchedConv2D] = None
        self._xc: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._idx: Optional[np.ndarray] = None
        self._eq: Optional[np.ndarray] = None
        self._m0: Optional[np.ndarray] = None
        self._m1: Optional[np.ndarray] = None
        self._b0: Optional[np.ndarray] = None
        self._b1: Optional[np.ndarray] = None
        self._brow: Optional[np.ndarray] = None
        self._t8: Optional[np.ndarray] = None
        self._flat: Optional[np.ndarray] = None
        self._grad: Optional[np.ndarray] = None
        self._slot_table: Optional[np.ndarray] = None
        self._base_shape: Optional[Tuple[int, ...]] = None
        self._base_offsets: Optional[np.ndarray] = None
        self._cache_idx: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def _window_base_offsets(self, images: int, h: int, w: int) -> np.ndarray:
        """Flat offset of each window's top-left element, window-major.

        ``images`` is the per-lane image count (``c * n`` for channel-major
        input) over a C-order ``(images, h, w)`` block.
        """
        if self._base_shape == (images, h, w) and self._base_offsets is not None:
            return self._base_offsets
        xp = self.xp
        p = self.pool_size
        # int32 indices halve the scatter traffic; a lane never exceeds
        # 2**31 elements in practice, but fall back to intp if it would.
        idx_dtype = np.int32 if images * h * w < 2**31 else np.intp
        rows = xp.arange(0, h, p, dtype=idx_dtype) * idx_dtype(w)
        cols = xp.arange(0, w, p, dtype=idx_dtype)
        plane = (rows[:, None] + cols[None, :]).ravel()
        image_base = xp.arange(images, dtype=idx_dtype) * idx_dtype(h * w)
        self._base_offsets = (image_base[:, None] + plane[None, :]).ravel()
        self._base_shape = (images, h, w)
        # In-window slot t = (i, j) sits i rows and j columns past the
        # window's top-left corner.
        self._slot_table = xp.array(
            [i * w + j for i in range(p) for j in range(p)], dtype=idx_dtype
        )
        return self._base_offsets

    def forward(self, x):
        xp = self.xp
        L, c, n, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"MaxPool2D input spatial dims {h}x{w} not divisible by {p}")
        if not x.flags["C_CONTIGUOUS"]:
            xc = self._xc = _scratch(self._xc, x.shape, x.dtype, xp)
            xp.copyto(xc, x)
            x = xc
        reshaped = x.reshape(L, c, n, h // p, p, w // p, p)
        out = None
        if self.sink is not None:
            out = self.sink.stage_input((L, c, n, h // p, w // p), x.dtype)
        if out is None:
            out = self._out = _scratch(self._out, (L, c, n, h // p, w // p), x.dtype, xp)
        columns = [reshaped[:, :, :, :, i, :, j] for i in range(p) for j in range(p)]
        idx = self._idx = _scratch(self._idx, out.shape, np.int8, xp)
        eq = self._eq = _scratch(self._eq, out.shape, bool, xp)
        if xp is np and p == 2:
            # 2x2 tournament: six cheap passes instead of the generic
            # seven double-strided ones.  Per window [c0 c1; c2 c3]
            # (row-major slots 0..3): M_r = max of row r, winner-in-row
            # b_r = (left == M_r), out = max(M0, M1), row pick =
            # (M0 == out).  ``maximum`` keeps its first operand on ties,
            # so the equalities resolve non-NaN ties to the leftmost /
            # topmost slot — out is bitwise the sequential fold and idx
            # the first-max slot.  NaN windows: ``maximum`` propagates
            # the NaN into out, every equality is False, and the oracle
            # sweep leaves slot p*p-1 there — restored by the fixup.
            c0, c1, c2, c3 = columns
            m0 = self._m0 = _scratch(self._m0, out.shape, x.dtype, xp)
            m1 = self._m1 = _scratch(self._m1, out.shape, x.dtype, xp)
            b0 = self._b0 = _scratch(self._b0, out.shape, bool, xp)
            b1 = self._b1 = _scratch(self._b1, out.shape, bool, xp)
            brow = self._brow = _scratch(self._brow, out.shape, bool, xp)
            t8 = self._t8 = _scratch(self._t8, out.shape, np.int8, xp)
            np.maximum(c0, c1, out=m0)
            np.equal(c0, m0, out=b0)
            np.maximum(c2, c3, out=m1)
            np.equal(c2, m1, out=b1)
            np.maximum(m0, m1, out=out)
            np.equal(m0, out, out=brow)
            # slot = 1 - b0 in the top row, 3 - b1 in the bottom row
            np.subtract(np.int8(3), b1.view(np.int8), out=idx)
            np.subtract(np.int8(1), b0.view(np.int8), out=t8)
            np.copyto(idx, t8, where=brow)
            np.isnan(out, out=eq)
            if eq.any():
                np.copyto(idx, np.int8(3), where=eq)
        else:
            if p == 1:
                xp.copyto(out, columns[0])
            else:
                xp.maximum(columns[0], columns[1], out=out)
                for col in columns[2:]:
                    xp.maximum(out, col, out=out)
            idx.fill(len(columns) - 1)
            for t in range(len(columns) - 2, -1, -1):
                xp.equal(columns[t], out, out=eq)
                xp.copyto(idx, np.int8(t), where=eq)
        self._cache_idx = idx
        self._cache_shape = x.shape
        return out

    def backward(self, grad_out, need_input_grad: bool = True):
        if self._cache_idx is None or self._cache_shape is None:
            raise RuntimeError("_BatchedMaxPool2D.backward called before forward")
        xp = self.xp
        L, c, n, h, w = self._cache_shape
        idx = self._cache_idx
        base = self._window_base_offsets(c * n, h, w)
        flat = self._flat = _scratch(self._flat, (L, idx[0].size), base.dtype, xp)
        xp.take(self._slot_table, idx.reshape(L, -1), out=flat)
        xp.add(flat, base[None, :], out=flat)
        grad = self._grad = _scratch(self._grad, (L, c * n * h * w), grad_out.dtype, xp)
        grad.fill(0)
        xp.put_along_axis(grad, flat, grad_out.reshape(L, -1), axis=1)
        return grad.reshape(L, c, n, h, w)


class _BatchedReLU(_BatchedLayer):
    """Elementwise ReLU; layout- and order-free, so bitwise-safe in place.

    ``inplace=True`` rewrites the incoming activation / gradient scratch
    buffers instead of allocating its own.  Only the top-level chains opt
    in: there every input is the previous layer's scratch, which is never
    re-read after the handoff.  Inside :class:`_BatchedResidualBlock` the
    default out-of-place form is kept (the skip path aliases buffers).
    """

    def __init__(self, backend: ArrayBackend, inplace: bool = False) -> None:
        super().__init__(backend)
        self.inplace = inplace
        self._out: Optional[np.ndarray] = None
        self._mask: Optional[np.ndarray] = None
        self._gx: Optional[np.ndarray] = None

    def forward(self, x):
        xp = self.xp
        if self._mask is None or self._mask.shape != x.shape:
            self._mask = xp.empty(x.shape, dtype=bool)
        xp.greater(x, 0.0, out=self._mask)
        if self.inplace:
            return xp.maximum(x, 0.0, out=x)
        self._out = _scratch(self._out, x.shape, x.dtype, xp)
        return xp.maximum(x, 0.0, out=self._out)

    def backward(self, grad_out, need_input_grad: bool = True):
        if self._mask is None:
            raise RuntimeError("_BatchedReLU.backward called before forward")
        if self.inplace:
            return self.xp.multiply(grad_out, self._mask, out=grad_out)
        self._gx = _scratch(self._gx, grad_out.shape, grad_out.dtype, self.xp)
        return self.xp.multiply(grad_out, self._mask, out=self._gx)


class _BatchedFlatten(_BatchedLayer):
    """Flatten; converts channel-major feature maps back to sample-major.

    The classifier operates on ``(L, n, features)`` with the oracle's
    ``(c, h, w)`` per-sample feature order, so 5-D channel-major input
    pays one small transposed copy here (and one on the way back).
    """

    def __init__(self, backend: ArrayBackend) -> None:
        super().__init__(backend)
        self._out: Optional[np.ndarray] = None
        self._gx: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x):
        self._cache_shape = x.shape
        if x.ndim == 5:
            L, c, n, h, w = x.shape
            out = self._out = _scratch(self._out, (L, n, c, h, w), x.dtype, self.xp)
            self.xp.copyto(out, x.transpose(0, 2, 1, 3, 4))
            return out.reshape(L, n, c * h * w)
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out, need_input_grad: bool = True):
        if self._cache_shape is None:
            raise RuntimeError("_BatchedFlatten.backward called before forward")
        shape = self._cache_shape
        if len(shape) == 5:
            L, c, n, h, w = shape
            gx = self._gx = _scratch(self._gx, shape, grad_out.dtype, self.xp)
            self.xp.copyto(gx, grad_out.reshape(L, n, c, h, w).transpose(0, 2, 1, 3, 4))
            return gx
        return grad_out.reshape(shape)


class _BatchedDense(_BatchedLayer):
    def __init__(self, template: Dense, params, grads, backend: ArrayBackend) -> None:
        super().__init__(backend)
        self.in_features = template.in_features
        self.out_features = template.out_features
        self.W = params["W"]  # (L, in, out)
        self.b = params["b"]  # (L, out)
        self.gW = grads["W"]
        self.gb = grads["b"]
        self._out: Optional[np.ndarray] = None
        self._gw: Optional[np.ndarray] = None
        self._gx: Optional[np.ndarray] = None
        self._cache_x = None

    def forward(self, x):
        xp = self.xp
        self._cache_x = x
        L, n = x.shape[0], x.shape[1]
        self._out = _scratch(self._out, (L, n, self.out_features), x.dtype, xp)
        out = xp.matmul(x, self.W, out=self._out)
        out += self.b[:, None, :]
        return out

    def backward(self, grad_out, need_input_grad: bool = True):
        if self._cache_x is None:
            raise RuntimeError("_BatchedDense.backward called before forward")
        xp = self.xp
        x = self._cache_x
        self._gw = _scratch(self._gw, self.gW.shape, self.gW.dtype, xp)
        self.gW += xp.matmul(x.transpose(0, 2, 1), grad_out, out=self._gw)
        self.gb += grad_out.sum(axis=1)
        if not need_input_grad:
            return None
        L, n = grad_out.shape[0], grad_out.shape[1]
        self._gx = _scratch(self._gx, (L, n, self.in_features), grad_out.dtype, xp)
        return xp.matmul(grad_out, self.W.transpose(0, 2, 1), out=self._gx)


class _BatchedResidualBlock(_BatchedLayer):
    def __init__(self, template: ResidualBlock, params, grads, backend: ArrayBackend) -> None:
        super().__init__(backend)

        def sub(prefix: str):
            return (
                {"W": params[f"{prefix}.W"], "b": params[f"{prefix}.b"]},
                {"W": grads[f"{prefix}.W"], "b": grads[f"{prefix}.b"]},
            )

        p1, g1 = sub("conv1")
        self.conv1 = _BatchedConv2D(template.conv1, p1, g1, backend)
        self.relu1 = _BatchedReLU(backend)
        p2, g2 = sub("conv2")
        self.conv2 = _BatchedConv2D(template.conv2, p2, g2, backend)
        self.relu_out = _BatchedReLU(backend)
        self.proj: Optional[_BatchedConv2D] = None
        if template.proj is not None:
            pp, gp = sub("proj")
            self.proj = _BatchedConv2D(template.proj, pp, gp, backend)
        self._sum: Optional[np.ndarray] = None

    def forward(self, x):
        xp = self.xp
        h = self.conv1.forward(x)
        h = self.relu1.forward(h)
        h = self.conv2.forward(h)
        shortcut = x if self.proj is None else self.proj.forward(x)
        self._sum = _scratch(self._sum, h.shape, np.result_type(h.dtype, shortcut.dtype), xp)
        xp.add(h, shortcut, out=self._sum)
        return self.relu_out.forward(self._sum)

    def backward(self, grad_out, need_input_grad: bool = True):
        grad_sum = self.relu_out.backward(grad_out)
        grad_h = self.conv2.backward(grad_sum)
        grad_h = self.relu1.backward(grad_h)
        grad_x = self.conv1.backward(grad_h, need_input_grad=need_input_grad)
        if self.proj is not None:
            proj_grad = self.proj.backward(grad_sum, need_input_grad=need_input_grad)
            if not need_input_grad:
                return None
            self.xp.add(grad_x, proj_grad, out=grad_x)
        else:
            if not need_input_grad:
                return None
            self.xp.add(grad_x, grad_sum, out=grad_x)
        return grad_x


class _BatchedCrossEntropyLoss:
    """Lane-stacked softmax cross-entropy (row ops mirror repro.nn.loss)."""

    def __init__(self, backend: ArrayBackend) -> None:
        self.xp = backend.xp
        self._lane_ix: Optional[np.ndarray] = None
        self._row_ix: Optional[np.ndarray] = None

    def forward_backward(self, logits, labels):
        xp = self.xp
        lanes, n = logits.shape[0], logits.shape[1]
        if self._lane_ix is None or self._lane_ix.shape[0] != lanes:
            self._lane_ix = xp.arange(lanes)[:, None]
        if self._row_ix is None or self._row_ix.shape[1] != n:
            self._row_ix = xp.arange(n)[None, :]
        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = xp.exp(shifted)
        probs = exp / exp.sum(axis=2, keepdims=True)
        picked = probs[self._lane_ix, self._row_ix, labels]
        losses = -xp.mean(xp.log(xp.clip(picked, 1e-12, None)), axis=1, dtype=np.float64)
        grad = probs.copy()
        grad[self._lane_ix, self._row_ix, labels] -= 1.0
        grad /= n
        return losses, grad


# ---------------------------------------------------------------------------
# Batched optimisers (exact op-order mirrors of repro.nn.optim)
# ---------------------------------------------------------------------------
class BatchedSGD:
    """SGD over ``(lanes, params)`` arenas, one fused update per section.

    Every operation is the elementwise mirror of
    :meth:`repro.nn.optim.SGD._apply_update`, so lane ``i`` of the arena
    evolves bitwise identically to a solo client stepping its section
    vector.  :meth:`lane_state` exports one lane in the exact format
    :meth:`repro.nn.optim.SGD.restore_state` consumes.
    """

    def __init__(
        self,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.backend = backend if backend is not None else get_array_backend()
        self.xp = self.backend.xp
        self._velocity: Dict[str, np.ndarray] = {}
        self._scratch: Dict[str, np.ndarray] = {}

    def _scratch_for(self, key: str, template) -> np.ndarray:
        scratch = self._scratch.get(key)
        if scratch is None or scratch.shape != template.shape or scratch.dtype != template.dtype:
            scratch = self.xp.empty_like(template)
            self._scratch[key] = scratch
        return scratch

    def _apply_update(self, key: str, param, grad) -> None:
        xp = self.xp
        scratch = self._scratch_for(key, param)
        if self.weight_decay:
            xp.multiply(param, self.weight_decay, out=scratch)
            scratch += grad
            grad = scratch
        if self.momentum:
            velocity = self._velocity.get(key)
            if velocity is None or velocity.shape != param.shape:
                velocity = xp.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity += grad
            update = velocity
        else:
            update = grad
        if update is scratch:
            scratch *= self.lr
        else:
            xp.multiply(update, self.lr, out=scratch)
        param -= scratch

    def step(self, sections: Dict[str, Tuple[np.ndarray, np.ndarray]]) -> None:
        for key, (param, grad) in sections.items():
            self._apply_update(key, param, grad)

    def reset_state(self) -> None:
        self._velocity.clear()
        self._scratch.clear()

    def lane_state(self, lane: int) -> dict:
        """One lane's state, shaped for ``Optimizer.restore_state``."""
        to_host = self.backend.to_host
        return {
            "velocity": {
                key: np.array(to_host(value[lane]), copy=True)
                for key, value in self._velocity.items()
            }
        }


class BatchedProximalSGD(BatchedSGD):
    """FedProx proximal SGD over lane arenas (anchor broadcast per section)."""

    def __init__(
        self,
        lr: float,
        mu: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        backend: Optional[ArrayBackend] = None,
    ) -> None:
        super().__init__(lr=lr, momentum=momentum, weight_decay=weight_decay, backend=backend)
        self.mu = mu
        self._anchor: Optional[Dict[str, np.ndarray]] = None
        self._prox_scratch: Dict[str, np.ndarray] = {}

    def set_anchor(self, weights: Dict[str, np.ndarray]) -> None:
        self._anchor = {
            key: self.backend.asarray(np.array(value, copy=True)) for key, value in weights.items()
        }

    def _apply_update(self, key: str, param, grad) -> None:
        xp = self.xp
        anchor = self._anchor.get(key) if self._anchor is not None else None
        if self.mu and anchor is not None:
            scratch = self._prox_scratch.get(key)
            if scratch is None or scratch.shape != param.shape or scratch.dtype != param.dtype:
                scratch = xp.empty_like(param)
                self._prox_scratch[key] = scratch
            # (L, P) minus broadcast (P,): per-lane identical to the solo
            # np.subtract(param, anchor).
            xp.subtract(param, anchor, out=scratch)
            scratch *= self.mu
            scratch += grad
            grad = scratch
        super()._apply_update(key, param, grad)

    def reset_state(self) -> None:
        super().reset_state()
        self._anchor = None
        self._prox_scratch.clear()

    def lane_state(self, lane: int) -> dict:
        state = super().lane_state(lane)
        state["anchor"] = (
            {
                key: np.array(self.backend.to_host(value), copy=True)
                for key, value in self._anchor.items()
            }
            if self._anchor is not None
            else None
        )
        return state


# ---------------------------------------------------------------------------
# Batched model
# ---------------------------------------------------------------------------
class BatchedModel:
    """``lanes`` independent copies of a :class:`SplitCNN` in section arenas.

    Parameters live in one ``(lanes, section_size)`` array per section;
    every layer parameter is a ``(lanes,) + shape`` view into it, mirroring
    the flat-vector storage of the per-client model.  ``train_step`` is the
    lane-stacked mirror of ``SplitCNN.train_batch``.
    """

    def __init__(self, template: SplitCNN, lanes: int, backend: Optional[ArrayBackend] = None) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be positive, got {lanes}")
        self.backend = backend if backend is not None else get_array_backend()
        self.xp = self.backend.xp
        self.lanes = lanes
        self.name = template.name
        self.dtype = template.dtype
        self.features_frozen = False
        self.classifier_frozen = False
        self.loss = _BatchedCrossEntropyLoss(self.backend)
        self._weights: Dict[str, np.ndarray] = {}
        self._grads: Dict[str, np.ndarray] = {}
        self.section_sizes: Dict[str, int] = {}
        for section in SplitCNN.SECTIONS:
            size = int(template.flat_parameters(section).size)
            self.section_sizes[section] = size
            self._weights[section] = self.xp.empty((lanes, size), dtype=self.dtype)
            self._grads[section] = self.xp.zeros((lanes, size), dtype=self.dtype)
        self.feature_layers = self._build_layers(template, SplitCNN.FEATURE_PREFIX)
        self.classifier_layers = self._build_layers(template, SplitCNN.CLASSIFIER_PREFIX)
        for prev, nxt in zip(self.feature_layers, self.feature_layers[1:]):
            if isinstance(prev, _BatchedMaxPool2D) and isinstance(nxt, _BatchedConv2D):
                prev.sink = nxt
        self._x_cm: Optional[np.ndarray] = None

    # ----------------------------------------------------------- construction
    def _lane_view(self, arena, slot):
        view = arena[:, slot.offset : slot.offset + slot.size].reshape((self.lanes,) + slot.shape)
        if self.xp is np:
            assert np.shares_memory(view, arena)
        return view

    def _build_layers(self, template: SplitCNN, section: str) -> List[_BatchedLayer]:
        source = (
            template.feature_layers
            if section == SplitCNN.FEATURE_PREFIX
            else template.classifier_layers
        )
        slots = iter(template.flat_slots(section))
        layers: List[_BatchedLayer] = []
        for position, layer in enumerate(source):
            pviews: Dict[str, np.ndarray] = {}
            gviews: Dict[str, np.ndarray] = {}
            for param_name in layer.params:
                slot = next(slots)
                pviews[param_name] = self._lane_view(self._weights[section], slot)
                gviews[param_name] = self._lane_view(self._grads[section], slot)
            layers.append(self._batch_layer(layer, pviews, gviews, position > 0))
        return layers

    def _batch_layer(self, layer, pviews, gviews, owns_input: bool = False) -> _BatchedLayer:
        if isinstance(layer, Conv2D):
            return _BatchedConv2D(layer, pviews, gviews, self.backend)
        if isinstance(layer, MaxPool2D):
            return _BatchedMaxPool2D(layer, self.backend)
        if isinstance(layer, ReLU):
            # A non-leading ReLU always receives another batched layer's
            # scratch buffer, so it may rewrite it in place.
            return _BatchedReLU(self.backend, inplace=owns_input)
        if isinstance(layer, Flatten):
            return _BatchedFlatten(self.backend)
        if isinstance(layer, Dense):
            return _BatchedDense(layer, pviews, gviews, self.backend)
        if isinstance(layer, ResidualBlock):
            return _BatchedResidualBlock(layer, pviews, gviews, self.backend)
        raise TypeError(f"no batched kernel for layer {type(layer).__name__}")

    # ------------------------------------------------------------- weights IO
    def load_all_lanes(self, section_vectors: Dict[str, np.ndarray]) -> None:
        """Broadcast one flat vector per section into every lane."""
        for section, vector in section_vectors.items():
            self._weights[section][...] = self.backend.asarray(vector)[None, :]

    def load_lane(self, section: str, lane: int, vector: np.ndarray) -> None:
        self._weights[section][lane, :] = self.backend.asarray(vector)

    def lane_flat(self, section: str, lane: int) -> np.ndarray:
        """Copy of one lane's flat section vector (host array)."""
        return np.array(self.backend.to_host(self._weights[section][lane]), copy=True)

    # --------------------------------------------------------------- training
    def zero_grad(self) -> None:
        for grads in self._grads.values():
            grads.fill(0)

    def freeze_features(self) -> None:
        self.features_frozen = True

    def unfreeze_features(self) -> None:
        self.features_frozen = False

    def freeze_classifier(self) -> None:
        self.classifier_frozen = True

    def unfreeze_classifier(self) -> None:
        self.classifier_frozen = False

    def _trainable_arenas(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        sections: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        if not self.features_frozen:
            key = SplitCNN.FEATURE_PREFIX
            sections[key] = (self._weights[key], self._grads[key])
        if not self.classifier_frozen:
            key = SplitCNN.CLASSIFIER_PREFIX
            sections[key] = (self._weights[key], self._grads[key])
        return sections

    def train_step(self, x, y, optimizer: Optional[BatchedSGD] = None) -> np.ndarray:
        """One lockstep training step; ``x`` is ``(lanes, n, ...)``.

        Returns the per-lane float64 loss vector.  Inputs must already be
        in the model dtype (cohort eligibility guarantees it), matching the
        no-op ``_cast_input`` of the per-client hot path.
        """
        if x.shape[0] != self.lanes or y.shape[0] != self.lanes:
            raise ValueError(
                f"expected leading lane dimension {self.lanes}, got x {x.shape} / y {y.shape}"
            )
        if x.shape[1] != y.shape[1]:
            raise ValueError(
                f"batch size mismatch: x has {x.shape[1]} rows, y has {y.shape[1]}"
            )
        if x.dtype != self.dtype:
            raise TypeError(f"batched inputs must be pre-cast to {self.dtype}, got {x.dtype}")
        self.zero_grad()
        h = x
        if h.ndim == 5:
            # Feature kernels run channel-major (L, C, N, H, W): one cheap
            # transposed copy here keeps every downstream pass streaming.
            # When the first layer is a padded conv the copy lands straight
            # in its pad-scratch interior, fusing out the pad pass.
            L, n, c, ih, iw = h.shape
            first = self.feature_layers[0]
            cm = None
            if isinstance(first, _BatchedConv2D):
                cm = first.stage_input((L, c, n, ih, iw), h.dtype)
            if cm is None:
                cm = self._x_cm = _scratch(self._x_cm, (L, c, n, ih, iw), h.dtype, self.xp)
            self.xp.copyto(cm, h.transpose(0, 2, 1, 3, 4))
            h = cm
        for layer in self.feature_layers:
            h = layer.forward(h)
        logits = h
        for layer in self.classifier_layers:
            logits = layer.forward(logits)
        losses, grad = self.loss.forward_backward(logits, y)
        for layer in reversed(self.classifier_layers):
            grad = layer.backward(grad)
        if not self.features_frozen:
            first = self.feature_layers[0]
            for layer in reversed(self.feature_layers):
                if layer is first:
                    # The input-layer dX is never consumed: skip its
                    # grad-cols GEMM and col2im (values unaffected; the
                    # analytic FLOP trace still charges the oracle's cost).
                    layer.backward(grad, need_input_grad=False)
                else:
                    grad = layer.backward(grad)
        if optimizer is not None:
            optimizer.step(self._trainable_arenas())
        return self.backend.to_host(losses)


# ---------------------------------------------------------------------------
# Cohorts, lanes and the executor
# ---------------------------------------------------------------------------
class _LaneState:
    """Bookkeeping for one client's lane inside a cohort."""

    __slots__ = (
        "client_id",
        "total_batches",
        "activated",
        "detached",
        "index",
        "client",
        "shadow",
        "start_loader_state",
        "losses",
        "consumed",
    )

    def __init__(self, client_id: int, total_batches: int) -> None:
        self.client_id = client_id
        self.total_batches = int(total_batches)
        self.activated = False
        self.detached = False
        self.index = -1
        self.client = None
        self.shadow: Optional[BatchLoader] = None
        self.start_loader_state: Optional[dict] = None
        self.losses: List[float] = []
        self.consumed = 0


class BatchedLane:
    """A client's handle onto its cohort lane.

    The owning :class:`repro.fl.client.FLClient` drives it instead of
    calling ``model.train_batch``: :meth:`trace` supplies the (analytic,
    oracle-identical) batch cost, :meth:`consume_loss` returns the next
    batch's loss (advancing the cohort on demand), and
    :meth:`materialize` / :meth:`abandon` leave the lane when the client's
    execution diverges from the lockstep.
    """

    def __init__(self, cohort: "_Cohort", state: _LaneState) -> None:
        self._cohort = cohort
        self._state = state

    def trace(self) -> PhaseTrace:
        return self._cohort.trace

    def consume_loss(self) -> float:
        state = self._state
        state.consumed += 1
        while self._cohort.steps_done < state.consumed:
            self._cohort.advance()
        return state.losses[state.consumed - 1]

    def materialize(self, client, drawn: int) -> Optional[float]:
        """Copy the lane's state after ``drawn`` batches back into ``client``.

        Fast path when the cohort sits at (or can advance to) exactly
        ``drawn`` waves; otherwise — the cohort already ran ahead for a
        faster lane — the client's batches are replayed through the
        per-client oracle from the round-start globals, which is what the
        lockstep mirrored in the first place.
        """
        cohort = self._cohort
        state = self._state
        executor = cohort.executor
        try:
            while cohort.steps_done < drawn:
                cohort.advance()
            if cohort.started and cohort.steps_done == drawn:
                for section in client.model.SECTIONS:
                    client.model.set_flat_weights(
                        cohort.model.lane_flat(section, state.index), section=section
                    )
                client.optimizer.restore_state(cohort.optimizer.lane_state(state.index))
                client.loader.set_state(state.shadow.state())
                executor.stats["fast_materializations"] += 1
                return state.losses[drawn - 1] if drawn > 0 else None
            executor.stats["replays"] += 1
            return self._replay(client, drawn)
        finally:
            cohort.detach(state)

    def _replay(self, client, drawn: int) -> Optional[float]:
        client.loader.set_state(self._state.start_loader_state)
        model = client.model
        for section in model.SECTIONS:
            model.set_flat_weights(self._cohort.globals[section], section=section)
        optimizer = client.optimizer
        optimizer.reset_state()
        if isinstance(optimizer, ProximalSGD):
            optimizer.set_anchor(
                {section: model.flat_parameters(section) for section in model.SECTIONS}
            )
        last: Optional[float] = None
        for _ in range(drawn):
            xb, yb = client.loader.next_batch()
            last, _ = model.train_batch(xb, yb, optimizer)
        return last

    def abandon(self, client, drawn: int) -> None:
        """Leave without materializing weights: only sync the loader.

        Used on disconnect / round supersede, where the per-client run
        would have advanced the loader by ``drawn`` draws but the weights
        are about to be overwritten anyway.
        """
        cohort = self._cohort
        state = self._state
        client.loader.set_state(state.start_loader_state)
        for _ in range(drawn):
            client.loader.next_batch()
        cohort.executor.stats["abandons"] += 1
        cohort.detach(state)


class _Cohort:
    """One lockstep group: shared arenas, shadow loaders, wave counter."""

    #: Lane handle class; the sharded executor swaps in its remote lane.
    lane_cls = BatchedLane

    def __init__(
        self,
        executor: "BatchedClientExecutor",
        key: tuple,
        round_number: int,
        members: Sequence[Tuple[int, object, int]],
        globals_by_section: Dict[str, np.ndarray],
    ) -> None:
        self.executor = executor
        self.key = key
        self.round_number = round_number
        self.globals = globals_by_section
        # (model name, dtype str, batch_n, input_shape, y dtype str, optimizer key)
        self.batch_n = int(key[2])
        self.input_shape = tuple(key[3])
        self.members: Dict[int, _LaneState] = {
            client_id: _LaneState(client_id, total) for client_id, _, total in members
        }
        self.started = False
        self.closing = False
        self.steps_done = 0
        self.max_steps = 0
        self.trace: Optional[PhaseTrace] = None
        self.model: Optional[BatchedModel] = None
        self.optimizer: Optional[BatchedSGD] = None
        self._active: List[_LaneState] = []
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    # ------------------------------------------------------------ activation
    def activate(self, client) -> Optional[BatchedLane]:
        state = self.members.get(client.client_id)
        if state is None or state.activated or self.started or self.closing:
            return None
        state.activated = True
        state.client = client
        state.start_loader_state = client.loader.state()
        if self.trace is None:
            self.trace = phase_flops(client.model, self.batch_n, self.input_shape)
        return self.lane_cls(self, state)

    def _start(self) -> None:
        self.started = True
        # Lanes that were claimed but already left (offload freeze, churn
        # disconnect, round supersede before the first wave) materialized or
        # abandoned through the per-client path; only live lanes get slots.
        self._active = [
            state for state in self.members.values() if state.activated and not state.detached
        ]
        for index, state in enumerate(self._active):
            state.index = index
        lanes = len(self._active)
        self.max_steps = max(state.total_batches for state in self._active)
        self.model, self.optimizer, self._x, self._y = self.executor._cohort_kernels(
            self.key, lanes, self._active[0].client.model
        )
        self.model.unfreeze_features()
        self.model.unfreeze_classifier()
        self.model.load_all_lanes(self.globals)
        self.optimizer.reset_state()
        if isinstance(self.optimizer, BatchedProximalSGD):
            self.optimizer.set_anchor(dict(self.globals))
        for state in self._active:
            loader = state.client.loader
            shadow = BatchLoader(
                loader.x, loader.y, batch_size=loader.batch_size, shuffle=loader.shuffle
            )
            shadow.set_state(state.start_loader_state)
            state.shadow = shadow
        self.executor.stats["cohorts_started"] += 1
        self.executor.stats["lanes"] += lanes

    # ----------------------------------------------------------------- waves
    def advance(self) -> None:
        """Run one lockstep wave: every lane trains its next batch."""
        if not self.started:
            self._start()
        if self.steps_done >= self.max_steps:
            raise RuntimeError(
                f"cohort for round {self.round_number} advanced past its "
                f"{self.max_steps}-step horizon"
            )
        for state in self._active:
            xb, yb = state.shadow.next_batch()
            self._x[state.index] = xb
            self._y[state.index] = yb
        losses = self.model.train_step(self._x, self._y, self.optimizer)
        for state in self._active:
            state.losses.append(float(losses[state.index]))
        self.steps_done += 1
        self.executor.stats["waves"] += 1

    # ------------------------------------------------------------- lifecycle
    def detach(self, state: _LaneState) -> None:
        state.detached = True
        state.client = None
        self.executor._maybe_release(self)

    def fully_detached(self) -> bool:
        return all(
            state.detached for state in self.members.values() if state.activated
        )


class BatchedClientExecutor:
    """Plans and hosts the lockstep cohorts of each synchronous round.

    The federator calls :meth:`plan_round` with the selected clients when
    it fans out training requests; each client then calls :meth:`activate`
    when its request arrives.  Clients whose request never arrives, arrives
    late (after the first wave), or arrives twice simply fall back to the
    per-client oracle path.  :meth:`finish_round` closes the round's
    cohorts; lanes of dropped stragglers stay live until they materialize
    or abandon.
    """

    #: Cohort class; the sharded executor swaps in its remote cohort.
    cohort_cls = _Cohort

    def __init__(self, backend: Optional[ArrayBackend] = None) -> None:
        self.backend = backend if backend is not None else get_array_backend()
        self._plan: Dict[int, _Cohort] = {}
        self._plan_round: Optional[int] = None
        self._live: List[_Cohort] = []
        self._kernel_cache: Dict[tuple, tuple] = {}
        self.stats: Dict[str, int] = {
            "rounds_planned": 0,
            "cohorts_planned": 0,
            "cohorts_started": 0,
            "lanes": 0,
            "waves": 0,
            "fallbacks": 0,
            "fast_materializations": 0,
            "replays": 0,
            "abandons": 0,
        }

    # ------------------------------------------------------------- planning
    def _eligibility_key(self, actor) -> Optional[tuple]:
        """Cohort grouping key for a client, or ``None`` for per-client.

        Lockstep requires an identical kernel schedule across the whole
        round: same architecture/dtype/input shape, same optimiser family
        and hyper-parameters, and a *uniform* batch-size sequence (true iff
        the dataset fits in one batch or divides evenly — ragged epoch
        tails would change the GEMM shapes and break bitwise parity).
        """
        model = getattr(actor, "model", None)
        loader = getattr(actor, "loader", None)
        optimizer = getattr(actor, "optimizer", None)
        if type(model) is not SplitCNN or loader is None:
            return None
        if type(optimizer) is ProximalSGD:
            opt_key = (
                "prox",
                optimizer.lr,
                optimizer.mu,
                optimizer.momentum,
                optimizer.weight_decay,
            )
        elif type(optimizer) is SGD:
            opt_key = ("sgd", optimizer.lr, optimizer.momentum, optimizer.weight_decay)
        else:
            return None
        n = loader.num_samples
        batch_size = loader.batch_size
        if n == 0 or (n > batch_size and n % batch_size):
            return None
        if loader.x.dtype != model.dtype:
            return None
        return (
            model.name,
            str(model.dtype),
            min(batch_size, n),
            tuple(loader.x.shape[1:]),
            str(loader.y.dtype),
            opt_key,
        )

    def plan_round(
        self,
        round_number: int,
        members: Sequence[Tuple[int, object, int]],
        global_model: SplitCNN,
    ) -> None:
        """Group ``(client_id, actor, total_batches)`` members into cohorts."""
        self._plan = {}
        self._plan_round = round_number
        self.stats["rounds_planned"] += 1
        groups: Dict[tuple, List[Tuple[int, object, int]]] = {}
        for client_id, actor, total in members:
            key = self._eligibility_key(actor)
            if key is None or total < 1:
                self.stats["fallbacks"] += 1
                continue
            groups.setdefault(key, []).append((client_id, actor, total))
        globals_cache: Dict[Tuple[str, str], Dict[str, np.ndarray]] = {}
        for key, group in groups.items():
            if len(group) < 2:
                # A cohort of one has nothing to amortise.
                self.stats["fallbacks"] += len(group)
                continue
            cache_key = (key[0], key[1])
            section_globals = globals_cache.get(cache_key)
            if section_globals is None:
                section_globals = {
                    section: global_model.get_flat_weights(section)
                    for section in global_model.SECTIONS
                }
                globals_cache[cache_key] = section_globals
            cohort = self.cohort_cls(self, key, round_number, group, section_globals)
            for client_id, _, _ in group:
                self._plan[client_id] = cohort
            self._live.append(cohort)
            self.stats["cohorts_planned"] += 1

    def activate(self, client, round_number: int) -> Optional[BatchedLane]:
        """A client's TRAIN_REQUEST arrived: claim its planned lane (or None)."""
        if self._plan_round != round_number:
            return None
        cohort = self._plan.get(client.client_id)
        if cohort is None:
            return None
        lane = cohort.activate(client)
        if lane is None:
            self.stats["fallbacks"] += 1
        return lane

    def finish_round(self, round_number: int) -> None:
        """The round finalized: close its cohorts (stragglers keep pulling)."""
        if self._plan_round == round_number:
            self._plan = {}
            self._plan_round = None
        for cohort in list(self._live):
            if cohort.round_number == round_number:
                cohort.closing = True
                self._maybe_release(cohort)

    def close(self) -> None:
        """Release executor-held resources (worker pools in subclasses)."""

    # ------------------------------------------------------------- internals
    def _cohort_kernels(self, key: tuple, lanes: int, template: SplitCNN):
        """(Re)use the batched model/optimiser/arena set for a cohort shape."""
        cache_key = (key, lanes)
        cached = self._kernel_cache.get(cache_key)
        if cached is not None:
            return cached
        model = BatchedModel(template, lanes, backend=self.backend)
        opt_key = key[5]
        if opt_key[0] == "prox":
            optimizer: BatchedSGD = BatchedProximalSGD(
                lr=opt_key[1],
                mu=opt_key[2],
                momentum=opt_key[3],
                weight_decay=opt_key[4],
                backend=self.backend,
            )
        else:
            optimizer = BatchedSGD(
                lr=opt_key[1], momentum=opt_key[2], weight_decay=opt_key[3], backend=self.backend
            )
        xp = self.backend.xp
        batch_n, input_shape, y_dtype = key[2], key[3], key[4]
        x_arena = xp.empty((lanes, batch_n) + tuple(input_shape), dtype=template.dtype)
        y_arena = xp.empty((lanes, batch_n), dtype=np.dtype(y_dtype))
        kernels = (model, optimizer, x_arena, y_arena)
        self._kernel_cache[cache_key] = kernels
        return kernels

    def _maybe_release(self, cohort: _Cohort) -> None:
        if cohort.closing and cohort.fully_detached() and cohort in self._live:
            self._live.remove(cohort)
            cohort.model = None
            cohort.optimizer = None
            cohort._x = None
            cohort._y = None
