"""Phase-aware CNN model container.

The paper (§2.1, Figure 3) splits a local training step into four phases:

* ``ff`` — forward pass through the feature (convolutional) layers,
* ``fc`` — forward pass through the classifier (fully connected) layers,
* ``bc`` — backward pass through the classifier layers,
* ``bf`` — backward pass through the feature layers.

Aergia's key observation (Figure 4) is that ``bf`` dominates the cost of a
step, so freezing the feature layers of a straggler removes most of its
per-batch work.  :class:`SplitCNN` makes this structure explicit: the model
is a pair of layer stacks (features, classifier) and
:meth:`SplitCNN.train_batch` executes and accounts for the four phases
separately, optionally skipping ``bf`` (and feature-parameter updates) when
the features are frozen.

Parameter storage is *flat*: each section (features, classifier) owns one
contiguous vector per dtype-width scalar, and every layer parameter is a
named view into it (see :meth:`SplitCNN.flat_parameters`).  Weight
aggregation, optimiser steps and payload sizing operate on the vectors in
single fused numpy operations; the dictionary API (:meth:`get_weights` /
:meth:`set_weights`) remains available as a thin adapter over the views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import DtypeLike, compute_dtype, resolve_dtype
from repro.nn.layers import Layer
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.optim import Optimizer


class Phase(str, enum.Enum):
    """The four training phases of a local update (paper Figure 3)."""

    FORWARD_FEATURES = "ff"
    FORWARD_CLASSIFIER = "fc"
    BACKWARD_CLASSIFIER = "bc"
    BACKWARD_FEATURES = "bf"

    @classmethod
    def ordered(cls) -> Tuple["Phase", ...]:
        """Phases in execution order within a training step."""
        return (
            cls.FORWARD_FEATURES,
            cls.FORWARD_CLASSIFIER,
            cls.BACKWARD_CLASSIFIER,
            cls.BACKWARD_FEATURES,
        )


@dataclass
class PhaseTrace:
    """FLOP counts per training phase for one (or several) batches.

    The cluster simulator converts these counts into virtual seconds by
    dividing by a client's effective compute rate, which recreates the
    heterogeneous per-phase timings that the paper measures on throttled
    Docker containers.
    """

    flops: Dict[Phase, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in Phase}
    )

    def add(self, phase: Phase, flops: float) -> None:
        self.flops[phase] += float(flops)

    def merge(self, other: "PhaseTrace") -> "PhaseTrace":
        merged = PhaseTrace()
        for phase in Phase:
            merged.flops[phase] = self.flops[phase] + other.flops[phase]
        return merged

    def total(self) -> float:
        return float(sum(self.flops.values()))

    def fractions(self) -> Dict[Phase, float]:
        """Share of the total FLOPs spent in each phase."""
        total = self.total()
        if total == 0:
            return {phase: 0.0 for phase in Phase}
        return {phase: self.flops[phase] / total for phase in Phase}

    def scaled(self, factor: float) -> "PhaseTrace":
        scaled = PhaseTrace()
        for phase in Phase:
            scaled.flops[phase] = self.flops[phase] * factor
        return scaled


@dataclass(frozen=True)
class FlatSlot:
    """Location of one named parameter inside a section's flat vector."""

    key: str
    offset: int
    size: int
    shape: Tuple[int, ...]


class _FlatSection:
    """One contiguous parameter vector (plus gradient vector) per section."""

    def __init__(self, name: str, layers: Sequence[Tuple[str, Layer]], dtype: np.dtype) -> None:
        self.name = name
        slots: List[FlatSlot] = []
        offset = 0
        for layer_name, layer in layers:
            for param_name, value in layer.params.items():
                key = f"{layer_name}.{param_name}"
                slots.append(FlatSlot(key, offset, int(value.size), tuple(value.shape)))
                offset += int(value.size)
        self.slots: Tuple[FlatSlot, ...] = tuple(slots)
        self.vector = np.empty(offset, dtype=dtype)
        self.grads = np.zeros(offset, dtype=dtype)
        self.views: Dict[str, np.ndarray] = {}
        self.grad_views: Dict[str, np.ndarray] = {}
        slot_iter = iter(self.slots)
        for layer_name, layer in layers:
            param_views: Dict[str, np.ndarray] = {}
            grad_views: Dict[str, np.ndarray] = {}
            for param_name in layer.params:
                slot = next(slot_iter)
                view = self.vector[slot.offset : slot.offset + slot.size].reshape(slot.shape)
                gview = self.grads[slot.offset : slot.offset + slot.size].reshape(slot.shape)
                param_views[param_name] = view
                grad_views[param_name] = gview
                self.views[slot.key] = view
                self.grad_views[slot.key] = gview
            layer.rebase_parameters(param_views, grad_views)

    @property
    def size(self) -> int:
        return int(self.vector.size)


class SplitCNN:
    """A CNN explicitly split into feature layers and classifier layers.

    Parameters
    ----------
    feature_layers:
        Convolutional part of the network (phases ``ff``/``bf``).
    classifier_layers:
        Fully connected part (phases ``fc``/``bc``).
    name:
        Human-readable architecture name used in reports.
    dtype:
        Compute dtype of the model's parameters and activations; defaults
        to the dtype of the provided layers' parameters (which in turn
        default to the global compute dtype).  Inputs are cast to this
        dtype at the model boundary.

    .. note::
       Construction **takes ownership** of the given layers: their
       parameters and gradients are rebased onto this model's contiguous
       section buffers.  If the layers previously belonged to another
       ``SplitCNN``, that model is detached (its flat vectors no longer
       observe the layers) and must not be trained afterwards.
    """

    FEATURE_PREFIX = "features"
    CLASSIFIER_PREFIX = "classifier"

    #: Section names in flat-vector concatenation order.
    SECTIONS = (FEATURE_PREFIX, CLASSIFIER_PREFIX)

    def __init__(
        self,
        feature_layers: Sequence[Layer],
        classifier_layers: Sequence[Layer],
        name: str = "split-cnn",
        dtype: Optional[DtypeLike] = None,
    ) -> None:
        if not classifier_layers:
            raise ValueError("SplitCNN requires at least one classifier layer")
        self.feature_layers: List[Layer] = list(feature_layers)
        self.classifier_layers: List[Layer] = list(classifier_layers)
        self.name = name
        self.loss_fn = CrossEntropyLoss()
        self.features_frozen = False
        self.classifier_frozen = False
        if dtype is not None:
            self.dtype = resolve_dtype(dtype)
        else:
            self.dtype = self._infer_dtype()
        self._sections: Dict[str, _FlatSection] = {}
        self._rebuild_flat_buffers()

    def _infer_dtype(self) -> np.dtype:
        for _, layer in self._named_layers():
            for value in layer.params.values():
                return value.dtype
        return compute_dtype()

    # ------------------------------------------------------------ structure
    def _named_layers(self) -> Iterable[Tuple[str, Layer]]:
        for idx, layer in enumerate(self.feature_layers):
            yield f"{self.FEATURE_PREFIX}.{idx}", layer
        for idx, layer in enumerate(self.classifier_layers):
            yield f"{self.CLASSIFIER_PREFIX}.{idx}", layer

    def _section_layers(self, section: str) -> List[Tuple[str, Layer]]:
        layers = (
            self.feature_layers if section == self.FEATURE_PREFIX else self.classifier_layers
        )
        return [(f"{section}.{idx}", layer) for idx, layer in enumerate(layers)]

    def _rebuild_flat_buffers(self) -> None:
        """(Re)allocate the per-section flat vectors and rebase all layers.

        Called from ``__init__`` and after :meth:`clone_architecture`'s
        deepcopy (which severs numpy view relationships).
        """
        self._sections = {
            section: _FlatSection(section, self._section_layers(section), self.dtype)
            for section in self.SECTIONS
        }
        # The legacy dict-view adapter aliases the section view tables just
        # rebuilt above, so any cached copy is stale now.
        self._trainable_cache = None

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(section.size for section in self._sections.values())

    def num_feature_parameters(self) -> int:
        """Number of parameters in the feature (convolutional) section."""
        return self._sections[self.FEATURE_PREFIX].size

    def num_classifier_parameters(self) -> int:
        """Number of parameters in the classifier (fully connected) section."""
        return self._sections[self.CLASSIFIER_PREFIX].size

    # ------------------------------------------------------------ flat API
    def _section(self, section: str) -> _FlatSection:
        try:
            return self._sections[section]
        except KeyError:
            raise KeyError(
                f"unknown section {section!r}; valid sections: {list(self.SECTIONS)}"
            ) from None

    def flat_parameters(self, section: str) -> np.ndarray:
        """The *live* contiguous parameter vector of a section (no copy).

        In-place updates to this vector are immediately visible to every
        layer, because layer parameters are views into it.
        """
        return self._section(section).vector

    def flat_grads(self, section: str) -> np.ndarray:
        """The *live* contiguous gradient vector of a section (no copy)."""
        return self._section(section).grads

    def flat_slots(self, section: str) -> Tuple[FlatSlot, ...]:
        """Named (key, offset, size, shape) layout of a section's vector."""
        return self._section(section).slots

    def named_flat_views(self) -> Dict[str, np.ndarray]:
        """Mapping ``"<section>.<layer>.<param>"`` -> live view into the flat buffers."""
        views: Dict[str, np.ndarray] = {}
        for section in self.SECTIONS:
            views.update(self._sections[section].views)
        return views

    def get_flat_weights(self, section: Optional[str] = None) -> np.ndarray:
        """Copy of the parameters as one contiguous vector.

        ``section`` restricts the copy to ``"features"`` or ``"classifier"``;
        when omitted the sections are concatenated in :attr:`SECTIONS` order.
        """
        if section is not None:
            return self._section(section).vector.copy()
        return np.concatenate([self._sections[s].vector for s in self.SECTIONS])

    def set_flat_weights(self, values: np.ndarray, section: Optional[str] = None) -> None:
        """Load parameters from a flat vector produced by :meth:`get_flat_weights`."""
        values = np.asarray(values)
        if section is not None:
            target = self._section(section).vector
            if values.shape != target.shape:
                raise ValueError(
                    f"flat weights for section {section!r} must have shape {target.shape}, "
                    f"got {values.shape}"
                )
            target[...] = values
            return
        total = self.num_parameters()
        if values.shape != (total,):
            raise ValueError(
                f"flat weights for {self.name} must have shape ({total},), got {values.shape}"
            )
        offset = 0
        for name in self.SECTIONS:
            sec = self._sections[name]
            sec.vector[...] = values[offset : offset + sec.size]
            offset += sec.size

    # ------------------------------------------------------------ weights IO
    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters keyed ``"<section>.<layer>.<param>"``."""
        weights: Dict[str, np.ndarray] = {}
        for section in self.SECTIONS:
            for key, view in self._sections[section].views.items():
                weights[key] = np.array(view, copy=True)
        return weights

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights` (copied in place)."""
        for section in self.SECTIONS:
            for key, view in self._sections[section].views.items():
                if key not in weights:
                    raise KeyError(f"missing weight {key!r} when loading into {self.name}")
                incoming = weights[key]
                if incoming.shape != view.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: model {view.shape}, incoming {incoming.shape}"
                    )
                view[...] = incoming

    def get_feature_weights(self) -> Dict[str, np.ndarray]:
        """Weights of the feature section only (offloaded to strong clients)."""
        return {
            key: np.array(view, copy=True)
            for key, view in self._sections[self.FEATURE_PREFIX].views.items()
        }

    def get_classifier_weights(self) -> Dict[str, np.ndarray]:
        """Weights of the classifier section only (kept by the weak client)."""
        return {
            key: np.array(view, copy=True)
            for key, view in self._sections[self.CLASSIFIER_PREFIX].views.items()
        }

    def set_partial_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load a subset of weights (e.g. only the feature section) in place.

        Only the provided keys are written; everything else is untouched.
        All keys and shapes are validated *before* any write, so a bad
        payload leaves the model unchanged.
        """
        views = self.named_flat_views()
        for key, value in weights.items():
            if key not in views:
                raise KeyError(f"unknown weight {key!r} for model {self.name}")
            value = np.asarray(value)
            if value.shape != views[key].shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: model {views[key].shape}, "
                    f"incoming {value.shape}"
                )
        for key, value in weights.items():
            views[key][...] = value

    # ------------------------------------------------------------- inference
    def _cast_input(self, x: np.ndarray) -> np.ndarray:
        """Cast a batch to the model's compute dtype (no-op when it matches)."""
        if x.dtype == self.dtype:
            return x
        return x.astype(self.dtype)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Full forward pass returning logits."""
        h = self._cast_input(x)
        for layer in self.feature_layers:
            h = layer.forward(h, training)
        for layer in self.classifier_layers:
            h = layer.forward(h, training)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels for a batch of inputs."""
        return np.argmax(self.forward(x, training=False), axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Predicted class probabilities for a batch of inputs."""
        return softmax(self.forward(x, training=False))

    # -------------------------------------------------------------- training
    def zero_grad(self) -> None:
        """Zero all gradients with one in-place fill per section vector."""
        for section in self._sections.values():
            section.grads.fill(0)

    def freeze_features(self) -> None:
        """Freeze the feature layers (skip ``bf`` and feature updates)."""
        self.features_frozen = True
        self._trainable_cache = None

    def unfreeze_features(self) -> None:
        """Undo :meth:`freeze_features`."""
        self.features_frozen = False
        self._trainable_cache = None

    def freeze_classifier(self) -> None:
        """Freeze the classifier parameters (used by strong clients that train
        offloaded feature layers: the classifier backward pass still runs so
        gradients reach the features, but classifier weights are not updated)."""
        self.classifier_frozen = True
        self._trainable_cache = None

    def unfreeze_classifier(self) -> None:
        """Undo :meth:`freeze_classifier`."""
        self.classifier_frozen = False
        self._trainable_cache = None

    def _trainable_sections(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """Section name -> (parameter vector, gradient vector) for unfrozen sections."""
        sections: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        if not self.features_frozen:
            sec = self._sections[self.FEATURE_PREFIX]
            sections[self.FEATURE_PREFIX] = (sec.vector, sec.grads)
        if not self.classifier_frozen:
            sec = self._sections[self.CLASSIFIER_PREFIX]
            sections[self.CLASSIFIER_PREFIX] = (sec.vector, sec.grads)
        return sections

    def _trainable_params(self) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Per-key dict view of the unfrozen parameters (legacy adapter).

        The dicts only depend on the frozen-section mask and the section
        view tables, so they are cached and invalidated on freeze/unfreeze
        and on flat-buffer rebuilds; the cached values alias the flat
        section buffers, never copy them.
        """
        cached = self._trainable_cache
        if cached is not None:
            return cached
        params: Dict[str, np.ndarray] = {}
        grads: Dict[str, np.ndarray] = {}
        for name, section in self._sections.items():
            if self.features_frozen and name == self.FEATURE_PREFIX:
                continue
            if self.classifier_frozen and name == self.CLASSIFIER_PREFIX:
                continue
            params.update(section.views)
            grads.update(section.grad_views)
        self._trainable_cache = (params, grads)
        return params, grads

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optional[Optimizer] = None,
    ) -> Tuple[float, PhaseTrace]:
        """Run one training step on a mini-batch.

        Executes the four phases in order, accumulating per-phase FLOPs into
        a :class:`PhaseTrace`.  When the feature layers are frozen the ``bf``
        phase is skipped entirely, which is exactly the saving that Aergia's
        weak clients realise after offloading.

        Parameters
        ----------
        x, y:
            Input batch and integer labels.
        optimizer:
            Optimiser applied to the (unfrozen) parameters; when ``None``
            gradients are computed but no update is applied.  The update is
            one fused vector operation per unfrozen section
            (:meth:`repro.nn.optim.Optimizer.step_flat`).

        Returns
        -------
        tuple
            ``(loss, phase_trace)``.
        """
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"batch size mismatch: x has {x.shape[0]} rows, y has {y.shape[0]}")
        self.zero_grad()
        trace = PhaseTrace()

        # Phase ff: forward through the feature layers.
        h = self._cast_input(x)
        for layer in self.feature_layers:
            h = layer.forward(h, training=True)
            trace.add(Phase.FORWARD_FEATURES, layer.last_forward_flops)

        # Phase fc: forward through the classifier layers.
        logits = h
        for layer in self.classifier_layers:
            logits = layer.forward(logits, training=True)
            trace.add(Phase.FORWARD_CLASSIFIER, layer.last_forward_flops)

        loss, grad = self.loss_fn.forward_backward(logits, y)

        # Phase bc: backward through the classifier layers.
        for layer in reversed(self.classifier_layers):
            grad = layer.backward(grad)
            trace.add(Phase.BACKWARD_CLASSIFIER, layer.last_backward_flops)

        # Phase bf: backward through the feature layers (skipped when frozen).
        if not self.features_frozen:
            for layer in reversed(self.feature_layers):
                grad = layer.backward(grad)
                trace.add(Phase.BACKWARD_FEATURES, layer.last_backward_flops)

        if optimizer is not None:
            optimizer.step_flat(self._trainable_sections())

        return loss, trace

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> Tuple[float, float]:
        """Compute mean loss and accuracy over a dataset.

        Evaluation is performed in mini-batches to bound memory use on the
        larger synthetic datasets.
        """
        if x.shape[0] == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        total_loss = 0.0
        correct = 0
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            total_loss += self.loss_fn.forward(logits, yb) * xb.shape[0]
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return total_loss / n, correct / n

    def phase_trace_for_batch(self, x: np.ndarray, y: np.ndarray) -> PhaseTrace:
        """Measure per-phase FLOPs of one batch without updating weights."""
        snapshot = self.get_flat_weights()
        _, trace = self.train_batch(x, y, optimizer=None)
        self.set_flat_weights(snapshot)
        return trace

    def clone_architecture(self) -> "SplitCNN":
        """Create a structurally identical model sharing no arrays with the original.

        Callers typically follow up with :meth:`set_weights` (or
        :meth:`set_flat_weights`) to copy the state.
        """
        import copy

        clone = copy.deepcopy(self)
        # deepcopy severs numpy view relationships (each view becomes an
        # independent array), so rebuild the flat buffers around the copied
        # parameter values.
        clone._rebuild_flat_buffers()
        clone.unfreeze_features()
        clone.unfreeze_classifier()
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SplitCNN(name={self.name!r}, features={len(self.feature_layers)} layers, "
            f"classifier={len(self.classifier_layers)} layers, params={self.num_parameters()})"
        )
