"""Phase-aware CNN model container.

The paper (§2.1, Figure 3) splits a local training step into four phases:

* ``ff`` — forward pass through the feature (convolutional) layers,
* ``fc`` — forward pass through the classifier (fully connected) layers,
* ``bc`` — backward pass through the classifier layers,
* ``bf`` — backward pass through the feature layers.

Aergia's key observation (Figure 4) is that ``bf`` dominates the cost of a
step, so freezing the feature layers of a straggler removes most of its
per-batch work.  :class:`SplitCNN` makes this structure explicit: the model
is a pair of layer stacks (features, classifier) and
:meth:`SplitCNN.train_batch` executes and accounts for the four phases
separately, optionally skipping ``bf`` (and feature-parameter updates) when
the features are frozen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Layer
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.optim import Optimizer


class Phase(str, enum.Enum):
    """The four training phases of a local update (paper Figure 3)."""

    FORWARD_FEATURES = "ff"
    FORWARD_CLASSIFIER = "fc"
    BACKWARD_CLASSIFIER = "bc"
    BACKWARD_FEATURES = "bf"

    @classmethod
    def ordered(cls) -> Tuple["Phase", ...]:
        """Phases in execution order within a training step."""
        return (
            cls.FORWARD_FEATURES,
            cls.FORWARD_CLASSIFIER,
            cls.BACKWARD_CLASSIFIER,
            cls.BACKWARD_FEATURES,
        )


@dataclass
class PhaseTrace:
    """FLOP counts per training phase for one (or several) batches.

    The cluster simulator converts these counts into virtual seconds by
    dividing by a client's effective compute rate, which recreates the
    heterogeneous per-phase timings that the paper measures on throttled
    Docker containers.
    """

    flops: Dict[Phase, float] = field(
        default_factory=lambda: {phase: 0.0 for phase in Phase}
    )

    def add(self, phase: Phase, flops: float) -> None:
        self.flops[phase] += float(flops)

    def merge(self, other: "PhaseTrace") -> "PhaseTrace":
        merged = PhaseTrace()
        for phase in Phase:
            merged.flops[phase] = self.flops[phase] + other.flops[phase]
        return merged

    def total(self) -> float:
        return float(sum(self.flops.values()))

    def fractions(self) -> Dict[Phase, float]:
        """Share of the total FLOPs spent in each phase."""
        total = self.total()
        if total == 0:
            return {phase: 0.0 for phase in Phase}
        return {phase: self.flops[phase] / total for phase in Phase}

    def scaled(self, factor: float) -> "PhaseTrace":
        scaled = PhaseTrace()
        for phase in Phase:
            scaled.flops[phase] = self.flops[phase] * factor
        return scaled


class SplitCNN:
    """A CNN explicitly split into feature layers and classifier layers.

    Parameters
    ----------
    feature_layers:
        Convolutional part of the network (phases ``ff``/``bf``).
    classifier_layers:
        Fully connected part (phases ``fc``/``bc``).
    name:
        Human-readable architecture name used in reports.
    """

    FEATURE_PREFIX = "features"
    CLASSIFIER_PREFIX = "classifier"

    def __init__(
        self,
        feature_layers: Sequence[Layer],
        classifier_layers: Sequence[Layer],
        name: str = "split-cnn",
    ) -> None:
        if not classifier_layers:
            raise ValueError("SplitCNN requires at least one classifier layer")
        self.feature_layers: List[Layer] = list(feature_layers)
        self.classifier_layers: List[Layer] = list(classifier_layers)
        self.name = name
        self.loss_fn = CrossEntropyLoss()
        self.features_frozen = False
        self.classifier_frozen = False

    # ------------------------------------------------------------ structure
    def _named_layers(self) -> Iterable[Tuple[str, Layer]]:
        for idx, layer in enumerate(self.feature_layers):
            yield f"{self.FEATURE_PREFIX}.{idx}", layer
        for idx, layer in enumerate(self.classifier_layers):
            yield f"{self.CLASSIFIER_PREFIX}.{idx}", layer

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(layer.num_parameters() for _, layer in self._named_layers())

    def num_feature_parameters(self) -> int:
        """Number of parameters in the feature (convolutional) section."""
        return sum(layer.num_parameters() for layer in self.feature_layers)

    def num_classifier_parameters(self) -> int:
        """Number of parameters in the classifier (fully connected) section."""
        return sum(layer.num_parameters() for layer in self.classifier_layers)

    # ------------------------------------------------------------ weights IO
    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters keyed ``"<section>.<layer>.<param>"``."""
        weights: Dict[str, np.ndarray] = {}
        for layer_name, layer in self._named_layers():
            for param_name, value in layer.params.items():
                weights[f"{layer_name}.{param_name}"] = np.array(value, copy=True)
        return weights

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load parameters produced by :meth:`get_weights` (copied in place)."""
        for layer_name, layer in self._named_layers():
            for param_name, value in layer.params.items():
                key = f"{layer_name}.{param_name}"
                if key not in weights:
                    raise KeyError(f"missing weight {key!r} when loading into {self.name}")
                incoming = weights[key]
                if incoming.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {key!r}: model {value.shape}, incoming {incoming.shape}"
                    )
                value[...] = incoming

    def get_feature_weights(self) -> Dict[str, np.ndarray]:
        """Weights of the feature section only (offloaded to strong clients)."""
        return {
            key: value
            for key, value in self.get_weights().items()
            if key.startswith(self.FEATURE_PREFIX + ".")
        }

    def get_classifier_weights(self) -> Dict[str, np.ndarray]:
        """Weights of the classifier section only (kept by the weak client)."""
        return {
            key: value
            for key, value in self.get_weights().items()
            if key.startswith(self.CLASSIFIER_PREFIX + ".")
        }

    def set_partial_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load a subset of weights (e.g. only the feature section)."""
        full = self.get_weights()
        for key, value in weights.items():
            if key not in full:
                raise KeyError(f"unknown weight {key!r} for model {self.name}")
            full[key] = value
        self.set_weights(full)

    # ------------------------------------------------------------- inference
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Full forward pass returning logits."""
        h = x
        for layer in self.feature_layers:
            h = layer.forward(h, training)
        for layer in self.classifier_layers:
            h = layer.forward(h, training)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels for a batch of inputs."""
        return np.argmax(self.forward(x, training=False), axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Predicted class probabilities for a batch of inputs."""
        return softmax(self.forward(x, training=False))

    # -------------------------------------------------------------- training
    def zero_grad(self) -> None:
        for _, layer in self._named_layers():
            layer.zero_grad()

    def freeze_features(self) -> None:
        """Freeze the feature layers (skip ``bf`` and feature updates)."""
        self.features_frozen = True

    def unfreeze_features(self) -> None:
        """Undo :meth:`freeze_features`."""
        self.features_frozen = False

    def freeze_classifier(self) -> None:
        """Freeze the classifier parameters (used by strong clients that train
        offloaded feature layers: the classifier backward pass still runs so
        gradients reach the features, but classifier weights are not updated)."""
        self.classifier_frozen = True

    def unfreeze_classifier(self) -> None:
        """Undo :meth:`freeze_classifier`."""
        self.classifier_frozen = False

    def _trainable_params(self) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        params: Dict[str, np.ndarray] = {}
        grads: Dict[str, np.ndarray] = {}
        for layer_name, layer in self._named_layers():
            if self.features_frozen and layer_name.startswith(self.FEATURE_PREFIX + "."):
                continue
            if self.classifier_frozen and layer_name.startswith(self.CLASSIFIER_PREFIX + "."):
                continue
            for param_name, value in layer.params.items():
                key = f"{layer_name}.{param_name}"
                params[key] = value
                grads[key] = layer.grads[param_name]
        return params, grads

    def train_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer: Optional[Optimizer] = None,
    ) -> Tuple[float, PhaseTrace]:
        """Run one training step on a mini-batch.

        Executes the four phases in order, accumulating per-phase FLOPs into
        a :class:`PhaseTrace`.  When the feature layers are frozen the ``bf``
        phase is skipped entirely, which is exactly the saving that Aergia's
        weak clients realise after offloading.

        Parameters
        ----------
        x, y:
            Input batch and integer labels.
        optimizer:
            Optimiser applied to the (unfrozen) parameters; when ``None``
            gradients are computed but no update is applied.

        Returns
        -------
        tuple
            ``(loss, phase_trace)``.
        """
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"batch size mismatch: x has {x.shape[0]} rows, y has {y.shape[0]}")
        self.zero_grad()
        trace = PhaseTrace()

        # Phase ff: forward through the feature layers.
        h = x
        for layer in self.feature_layers:
            h = layer.forward(h, training=True)
            trace.add(Phase.FORWARD_FEATURES, layer.last_forward_flops)

        # Phase fc: forward through the classifier layers.
        logits = h
        for layer in self.classifier_layers:
            logits = layer.forward(logits, training=True)
            trace.add(Phase.FORWARD_CLASSIFIER, layer.last_forward_flops)

        loss, grad = self.loss_fn.forward_backward(logits, y)

        # Phase bc: backward through the classifier layers.
        for layer in reversed(self.classifier_layers):
            grad = layer.backward(grad)
            trace.add(Phase.BACKWARD_CLASSIFIER, layer.last_backward_flops)

        # Phase bf: backward through the feature layers (skipped when frozen).
        if not self.features_frozen:
            for layer in reversed(self.feature_layers):
                grad = layer.backward(grad)
                trace.add(Phase.BACKWARD_FEATURES, layer.last_backward_flops)

        if optimizer is not None:
            params, grads = self._trainable_params()
            optimizer.step(params, grads)

        return loss, trace

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> Tuple[float, float]:
        """Compute mean loss and accuracy over a dataset.

        Evaluation is performed in mini-batches to bound memory use on the
        larger synthetic datasets.
        """
        if x.shape[0] == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        total_loss = 0.0
        correct = 0
        n = x.shape[0]
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            total_loss += self.loss_fn.forward(logits, yb) * xb.shape[0]
            correct += int((np.argmax(logits, axis=1) == yb).sum())
        return total_loss / n, correct / n

    def phase_trace_for_batch(self, x: np.ndarray, y: np.ndarray) -> PhaseTrace:
        """Measure per-phase FLOPs of one batch without updating weights."""
        weights = self.get_weights()
        _, trace = self.train_batch(x, y, optimizer=None)
        self.set_weights(weights)
        return trace

    def clone_architecture(self) -> "SplitCNN":
        """Create a structurally identical model with freshly initialised weights.

        The clone shares no arrays with the original; callers typically
        follow up with :meth:`set_weights` to copy the state.
        """
        import copy

        clone = copy.deepcopy(self)
        clone.unfreeze_features()
        clone.unfreeze_classifier()
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SplitCNN(name={self.name!r}, features={len(self.feature_layers)} layers, "
            f"classifier={len(self.classifier_layers)} layers, params={self.num_parameters()})"
        )
