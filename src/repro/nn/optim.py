"""Optimisers used by clients during local training.

Two optimisers are needed by the reproduction:

* :class:`SGD` — plain stochastic gradient descent with optional momentum
  and weight decay, used by FedAvg, FedNova, TiFL, Aergia and the deadline
  baseline.
* :class:`ProximalSGD` — SGD with the FedProx proximal term
  ``(mu / 2) * ||w - w_global||^2`` added to the local objective, realised
  as an extra ``mu * (w - w_global)`` term in the gradient.

Optimisers update parameter arrays **in place** so that composite layers
(e.g. :class:`repro.nn.layers.ResidualBlock`) that expose views of their
sub-layer parameters keep observing the updated values.

The hot path is :meth:`Optimizer.step_flat`, which
:meth:`repro.nn.model.SplitCNN.train_batch` calls with one contiguous
``(parameter vector, gradient vector)`` pair per unfrozen model section:
the whole update is a handful of fused vector operations instead of a
per-key Python loop, and all intermediates live in per-key scratch buffers
that are reused across steps.  The dictionary :meth:`Optimizer.step` API is
kept as a thin adapter over the same fused kernel, so existing baselines
and tests keep working unchanged.  The fused kernel preserves the exact
floating-point operation order of the original per-key implementation
(``update = grad + wd*w``; ``v = m*v + update``; ``w -= lr*v``), so
``float64`` runs are bit-identical with the seed engine.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np


class Optimizer:
    """Interface shared by all optimisers."""

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Apply one update to ``params`` given ``grads`` (in place)."""
        raise NotImplementedError

    def step_flat(self, sections: Mapping[str, Tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one update to named ``(param_vector, grad_vector)`` pairs.

        The default implementation adapts to :meth:`step`; subclasses with a
        fused kernel override :meth:`step` instead and get both entry points
        for free.  Internal state (momentum, anchors) is keyed by the given
        names, so a section name must not collide with a per-key name within
        one optimiser instance's lifetime.
        """
        self.step(
            {name: vectors[0] for name, vectors in sections.items()},
            {name: vectors[1] for name, vectors in sections.items()},
        )

    def reset_state(self) -> None:
        """Drop any internal state (momentum buffers, anchors, scratch)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}
        self._scratch: Dict[str, np.ndarray] = {}

    def _scratch_for(self, key: str, template: np.ndarray) -> np.ndarray:
        scratch = self._scratch.get(key)
        if scratch is None or scratch.shape != template.shape or scratch.dtype != template.dtype:
            scratch = np.empty_like(template)
            self._scratch[key] = scratch
        return scratch

    def _apply_update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Fused, allocation-free update of one parameter array.

        Operation order matches the original per-key implementation exactly
        (IEEE addition is commutative, so ``wd*w + g == g + wd*w`` bitwise).
        """
        scratch = self._scratch_for(key, param)
        if self.weight_decay:
            np.multiply(param, self.weight_decay, out=scratch)
            scratch += grad
            grad = scratch
        if self.momentum:
            velocity = self._velocity.get(key)
            if velocity is None or velocity.shape != param.shape:
                velocity = np.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity += grad
            update = velocity
        else:
            update = grad
        if update is scratch:
            scratch *= self.lr
        else:
            np.multiply(update, self.lr, out=scratch)
        param -= scratch

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        for key, param in params.items():
            self._apply_update(key, param, grads[key])

    def reset_state(self) -> None:
        self._velocity.clear()
        self._scratch.clear()

    def capture_state(self) -> dict:
        """Serializable mid-training state (checkpointing).

        Only the momentum buffers carry information across steps; scratch
        buffers are overwritten before every use and are rebuilt lazily.
        """
        return {"velocity": {key: value.copy() for key, value in self._velocity.items()}}

    def restore_state(self, state: dict) -> None:
        """Restore state captured by :meth:`capture_state` (after reset)."""
        self.reset_state()
        self._velocity.update(
            {key: np.array(value, copy=True) for key, value in state["velocity"].items()}
        )


class ProximalSGD(SGD):
    """SGD with the FedProx proximal term.

    The anchor (global) weights must be set with :meth:`set_anchor` at the
    start of each local training pass; the gradient of the proximal term is
    then ``mu * (w - w_anchor)``.  With ``mu = 0`` the optimiser degrades to
    plain SGD, matching the FedProx formulation.

    The anchor mapping is keyed by whatever names the step entry point
    uses: per-parameter keys for the dictionary :meth:`step` API, or
    section names holding one contiguous anchor vector each for the flat
    path (``SplitCNN`` clients pass ``model.flat_parameters(section)``
    copies).  Names absent from the anchor receive no proximal term.
    """

    def __init__(
        self,
        lr: float = 0.01,
        mu: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr=lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu
        self._anchor: Optional[Dict[str, np.ndarray]] = None
        self._prox_scratch: Dict[str, np.ndarray] = {}

    def set_anchor(self, weights: Mapping[str, np.ndarray]) -> None:
        """Record the global model weights the proximal term pulls towards."""
        self._anchor = {key: np.array(value, copy=True) for key, value in weights.items()}

    def step_flat(self, sections: Mapping[str, Tuple[np.ndarray, np.ndarray]]) -> None:
        if self.mu and self._anchor is not None:
            missing = [key for key in sections if key not in self._anchor]
            if missing:
                # Fail loudly instead of silently dropping the proximal term
                # for any section: an anchor keyed by per-parameter names (or
                # covering only some sections) cannot be applied to the
                # section-vector step that SplitCNN.train_batch drives.
                raise ValueError(
                    f"ProximalSGD anchor is missing model sections {sorted(missing)} "
                    f"(anchor keys: {sorted(self._anchor)}); set the anchor from the "
                    "model's flat section vectors (model.flat_parameters(section)) "
                    "before training through SplitCNN.train_batch"
                )
        super().step_flat(sections)

    def _apply_update(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        anchor = self._anchor.get(key) if self._anchor is not None else None
        if self.mu and anchor is not None:
            if anchor.shape != param.shape:
                raise ValueError(
                    f"anchor shape {anchor.shape} does not match parameter "
                    f"{key!r} shape {param.shape}"
                )
            scratch = self._prox_scratch.get(key)
            if scratch is None or scratch.shape != param.shape or scratch.dtype != param.dtype:
                scratch = np.empty_like(param)
                self._prox_scratch[key] = scratch
            np.subtract(param, anchor, out=scratch)
            scratch *= self.mu
            scratch += grad
            grad = scratch
        super()._apply_update(key, param, grad)

    def reset_state(self) -> None:
        super().reset_state()
        self._anchor = None
        self._prox_scratch.clear()

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["anchor"] = (
            {key: value.copy() for key, value in self._anchor.items()}
            if self._anchor is not None
            else None
        )
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        anchor = state.get("anchor")
        if anchor is not None:
            self.set_anchor(anchor)
