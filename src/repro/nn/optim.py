"""Optimisers used by clients during local training.

Two optimisers are needed by the reproduction:

* :class:`SGD` — plain stochastic gradient descent with optional momentum
  and weight decay, used by FedAvg, FedNova, TiFL, Aergia and the deadline
  baseline.
* :class:`ProximalSGD` — SGD with the FedProx proximal term
  ``(mu / 2) * ||w - w_global||^2`` added to the local objective, realised
  as an extra ``mu * (w - w_global)`` term in the gradient.

Optimisers update parameter arrays **in place** so that composite layers
(e.g. :class:`repro.nn.layers.ResidualBlock`) that expose views of their
sub-layer parameters keep observing the updated values.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class Optimizer:
    """Interface shared by all optimisers."""

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Apply one update to ``params`` given ``grads`` (in place)."""
        raise NotImplementedError

    def reset_state(self) -> None:
        """Drop any internal state (momentum buffers, anchors)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        for key, param in params.items():
            grad = grads[key]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[key] = velocity
                update = velocity
            else:
                update = grad
            param -= self.lr * update

    def reset_state(self) -> None:
        self._velocity.clear()


class ProximalSGD(SGD):
    """SGD with the FedProx proximal term.

    The anchor (global) weights must be set with :meth:`set_anchor` at the
    start of each local training pass; the gradient of the proximal term is
    then ``mu * (w - w_anchor)``.  With ``mu = 0`` the optimiser degrades to
    plain SGD, matching the FedProx formulation.
    """

    def __init__(
        self,
        lr: float = 0.01,
        mu: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr=lr, momentum=momentum, weight_decay=weight_decay)
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu
        self._anchor: Optional[Dict[str, np.ndarray]] = None

    def set_anchor(self, weights: Dict[str, np.ndarray]) -> None:
        """Record the global model weights the proximal term pulls towards."""
        self._anchor = {key: np.array(value, copy=True) for key, value in weights.items()}

    def step(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        if self.mu and self._anchor is not None:
            grads = {
                key: grads[key] + self.mu * (params[key] - self._anchor[key])
                if key in self._anchor
                else grads[key]
                for key in params
            }
        super().step(params, grads)

    def reset_state(self) -> None:
        super().reset_state()
        self._anchor = None
