"""Compute-dtype policy for the numpy engine.

Every figure of the paper reduces to thousands of ``SplitCNN.train_batch``
calls, so the arithmetic width of the engine is a first-order performance
knob: ``float32`` halves memory traffic and roughly doubles BLAS throughput
on most CPUs while leaving the *simulated* results (FLOP counts, virtual
times) untouched, because those are derived from tensor shapes, not from
arithmetic precision.

The policy is a process-wide default plus explicit overrides:

* ``REPRO_DTYPE`` environment variable (``"float32"`` / ``"float64"``)
  selects the default at import time — parallel sweep workers inherit it;
* :func:`set_compute_dtype` / :func:`using_dtype` change it at runtime
  (the experiment runner applies a config's ``dtype`` field this way);
* layer constructors accept an explicit ``dtype=`` argument that wins over
  the global default (used by the dual-dtype gradient-check tests).

``float64`` mode is bit-compatible with the seed engine: every optimisation
in the fast path (scratch reuse, fused updates, flat aggregation) preserves
the exact floating-point operation order of the original implementation.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Union

import numpy as np

DtypeLike = Union[str, type, np.dtype]

#: dtypes the engine supports; anything else is a configuration error.
SUPPORTED_DTYPES = ("float32", "float64")

DEFAULT_DTYPE_NAME = "float32"


def resolve_dtype(spec: Optional[DtypeLike]) -> np.dtype:
    """Normalise a dtype spec (``"float32"``, ``np.float64``, ...) to ``np.dtype``.

    ``None`` resolves to the current global compute dtype.
    """
    if spec is None:
        return compute_dtype()
    dtype = np.dtype(spec)
    if dtype.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype.name!r}; supported: {list(SUPPORTED_DTYPES)}"
        )
    return dtype


def _dtype_from_env() -> np.dtype:
    name = os.environ.get("REPRO_DTYPE", DEFAULT_DTYPE_NAME).strip().lower()
    if name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"invalid REPRO_DTYPE {name!r}; supported: {list(SUPPORTED_DTYPES)}"
        )
    return np.dtype(name)


_COMPUTE_DTYPE: np.dtype = _dtype_from_env()


def compute_dtype() -> np.dtype:
    """The dtype newly constructed layers and models use for parameters."""
    return _COMPUTE_DTYPE


def set_compute_dtype(spec: DtypeLike) -> np.dtype:
    """Set the global compute dtype; returns the resolved ``np.dtype``."""
    global _COMPUTE_DTYPE
    dtype = np.dtype(spec)
    if dtype.name not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported compute dtype {dtype.name!r}; supported: {list(SUPPORTED_DTYPES)}"
        )
    _COMPUTE_DTYPE = dtype
    return dtype


@contextmanager
def using_dtype(spec: DtypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the global compute dtype (restored on exit)."""
    previous = compute_dtype()
    dtype = set_compute_dtype(spec)
    try:
        yield dtype
    finally:
        set_compute_dtype(previous)
