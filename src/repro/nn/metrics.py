"""Classification metrics used by the experiment harness."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to the labels.

    ``predictions`` may be class indices (1-D) or logits/probabilities
    (2-D); in the latter case the argmax over the last axis is used.
    """
    if predictions.ndim == 2:
        predictions = np.argmax(predictions, axis=1)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape}, labels {labels.shape}"
        )
    if labels.size == 0:
        raise ValueError("cannot compute accuracy on empty arrays")
    return float(np.mean(predictions == labels))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is within the top-``k`` scores."""
    if scores.ndim != 2:
        raise ValueError("top_k_accuracy expects a 2-D score matrix")
    if k < 1 or k > scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}], got {k}")
    top_k = np.argsort(scores, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(np.mean(hits))
