"""Neural-network layers with forward/backward passes and FLOP accounting.

Every layer exposes:

* :meth:`Layer.forward` / :meth:`Layer.backward` — real numpy math,
* :attr:`Layer.params` / :attr:`Layer.grads` — named parameter and gradient
  arrays (empty for stateless layers),
* :attr:`Layer.last_forward_flops` / :attr:`Layer.last_backward_flops` —
  the floating-point operation counts of the most recent forward/backward
  call.  The cluster simulator converts these counts into virtual seconds,
  which is how the reproduction recreates the heterogeneous training times
  of the paper's Docker/Kubernetes testbed without real CPU throttling.

Layers operate on arrays of the configured compute dtype (see
:mod:`repro.nn.dtype`; ``float32`` by default, ``float64`` opt-in) in
``(N, C, H, W)`` layout for images and ``(N, F)`` layout for flat features.

The per-batch path is engineered to be allocation-free where possible:
scratch buffers (im2col columns, padded inputs, ReLU masks, pooling
windows) are reused across same-shape batches, ``zero_grad`` fills
existing gradient buffers in place, and ``MaxPool2D`` caches the flat
indices of each window's maximum instead of materialising boolean masks.
In ``float64`` mode every optimisation preserves the exact floating-point
operation order of the original implementation, so results are
bit-identical with the seed engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.dtype import DtypeLike
from repro.nn.initializers import he_normal, zeros


def _scratch(current: Optional[np.ndarray], shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Return ``current`` if it matches ``shape``/``dtype``, else a new buffer."""
    if current is not None and current.shape == shape and current.dtype == dtype:
        return current
    return np.empty(shape, dtype=dtype)


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and keep
    ``self._params`` / ``self._grads`` dictionaries in sync.  Gradients are
    *accumulated into* ``self._grads`` on each backward call after being
    reset by :meth:`zero_grad`.
    """

    def __init__(self) -> None:
        self._params: Dict[str, np.ndarray] = {}
        self._grads: Dict[str, np.ndarray] = {}
        self.last_forward_flops: int = 0
        self.last_backward_flops: int = 0

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Named trainable parameters of this layer."""
        return self._params

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Named gradients, matching :attr:`params` keys and shapes."""
        return self._grads

    def zero_grad(self) -> None:
        """Reset all gradient buffers to zero (in place, without reallocating)."""
        for key, value in self._params.items():
            grad = self._grads.get(key)
            if grad is not None and grad.shape == value.shape and grad.dtype == value.dtype:
                grad.fill(0)
            else:
                self._grads[key] = np.zeros_like(value)

    def rebase_parameters(
        self,
        param_views: Dict[str, np.ndarray],
        grad_views: Dict[str, np.ndarray],
    ) -> None:
        """Move parameters and gradients onto externally owned array views.

        :class:`repro.nn.model.SplitCNN` uses this to place every parameter
        of a model section into one contiguous flat buffer; the views keep
        the per-layer dict API intact while aggregation and optimiser steps
        operate on the underlying vector.  Current values are copied into
        the views (casting to the view dtype if necessary).
        """
        for key in self._params:
            view = param_views[key]
            view[...] = self._params[key]
            self._params[key] = view
            gview = grad_views[key]
            old_grad = self._grads.get(key)
            if old_grad is not None and old_grad.shape == gview.shape:
                gview[...] = old_grad
            else:
                gview.fill(0)
            self._grads[key] = gview

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self._params.values()))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding the batch dimension) produced for ``input_shape``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


# --------------------------------------------------------------------------
# Convolution
# --------------------------------------------------------------------------
class Conv2D(Layer):
    """2D convolution layer (``NCHW`` layout) implemented with im2col.

    Parameters
    ----------
    in_channels, out_channels:
        Number of input and output feature maps.
    kernel_size:
        Side of the square convolution kernel.
    stride:
        Convolution stride (same in both spatial dimensions).
    padding:
        Symmetric zero padding.
    rng:
        Generator used for He-normal weight initialisation.  A default
        generator is created when omitted, which is convenient in tests but
        should be avoided in experiments that must be reproducible.
    dtype:
        Parameter dtype; defaults to the global compute dtype.

    The im2col column matrix — the largest per-batch intermediate, ``k**2``
    times the input size — lives in a scratch buffer that is reused across
    batches of the same shape.  Training and inference use separate column
    scratches so that an evaluation pass between ``forward(training=True)``
    and ``backward`` cannot clobber the cached activations.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        dtype: Optional[DtypeLike] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        fan_in = in_channels * kernel_size * kernel_size
        self._params["W"] = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng, dtype=dtype
        )
        self._params["b"] = zeros((out_channels,), dtype=dtype)
        self.zero_grad()

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[Tuple[int, int, int, int]] = None
        # Reused scratch buffers (see class docstring).
        self._cols_train: Optional[np.ndarray] = None
        self._cols_eval: Optional[np.ndarray] = None
        self._pad_scratch: Optional[np.ndarray] = None
        self._grad_cols_scratch: Optional[np.ndarray] = None
        self._col2im_scratch: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        return (self.out_channels, out_h, out_w)

    # ------------------------------------------------------------- im2col
    def _padded(self, x: np.ndarray) -> np.ndarray:
        """Zero-padded input, built in a reused scratch buffer.

        Only the interior is rewritten on each call; the zero border is
        written once when the buffer is (re)allocated and stays untouched.
        """
        p = self.padding
        if p == 0:
            return x
        n, c, h, w = x.shape
        shape = (n, c, h + 2 * p, w + 2 * p)
        if (
            self._pad_scratch is None
            or self._pad_scratch.shape != shape
            or self._pad_scratch.dtype != x.dtype
        ):
            self._pad_scratch = np.zeros(shape, dtype=x.dtype)
        self._pad_scratch[:, :, p:-p, p:-p] = x
        return self._pad_scratch

    def _im2col(self, x: np.ndarray, training: bool) -> np.ndarray:
        """Patch-to-column rearrangement into a reused scratch buffer.

        Returns a C-contiguous array of shape ``(N, out_h, out_w, C*k*k)``.
        """
        n, c, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        shape = (n, out_h, out_w, c * k * k)
        if training:
            cols = self._cols_train = _scratch(self._cols_train, shape, x.dtype)
        else:
            cols = self._cols_eval = _scratch(self._cols_eval, shape, x.dtype)
        padded = self._padded(x)
        cols6 = cols.reshape(n, out_h, out_w, c, k, k)
        # One C-level strided copy via a sliding-window view instead of k*k
        # per-offset slice assignments (~3x faster for 5x5 kernels).
        windows = np.lib.stride_tricks.sliding_window_view(padded, (k, k), axis=(2, 3))
        np.copyto(cols6, windows[:, :, ::s, ::s].transpose(0, 2, 3, 1, 4, 5))
        return cols

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        cols = self._im2col(x, training)
        out_h, out_w = cols.shape[1], cols.shape[2]

        w_mat = self._params["W"].reshape(self.out_channels, -1)
        out = cols.reshape(n * out_h * out_w, -1) @ w_mat.T
        out += self._params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        if training:
            self._cache_cols = cols
            self._cache_x_shape = x.shape

        # 2 flops (mul + add) per MAC.
        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_forward_flops = 2 * macs
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_x_shape is None:
            raise RuntimeError("Conv2D.backward called before forward(training=True)")
        n, _, out_h, out_w = grad_out.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        cols = self._cache_cols
        w_mat = self._params["W"].reshape(self.out_channels, -1)

        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        cols_flat = cols.reshape(n * out_h * out_w, -1)

        grad_w = grad_flat.T @ cols_flat
        self._grads["W"] += grad_w.reshape(self._params["W"].shape)
        self._grads["b"] += grad_flat.sum(axis=0)

        result_dtype = np.result_type(grad_flat.dtype, w_mat.dtype)
        self._grad_cols_scratch = _scratch(
            self._grad_cols_scratch, (grad_flat.shape[0], w_mat.shape[1]), result_dtype
        )
        grad_cols = np.matmul(grad_flat, w_mat, out=self._grad_cols_scratch)

        # col2im: accumulate overlapping patches into a reused padded buffer.
        _, c, h, w = self._cache_x_shape
        acc_shape = (n, c, h + 2 * p, w + 2 * p)
        self._col2im_scratch = _scratch(self._col2im_scratch, acc_shape, result_dtype)
        acc = self._col2im_scratch
        acc.fill(0)
        gc6 = grad_cols.reshape(n, out_h, out_w, c, k, k)
        for i in range(k):
            i_max = i + s * out_h
            for j in range(k):
                j_max = j + s * out_w
                acc[:, :, i:i_max:s, j:j_max:s] += gc6[:, :, :, :, i, j].transpose(0, 3, 1, 2)
        grad_x = acc[:, :, p:-p, p:-p].copy() if p > 0 else acc.copy()

        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_backward_flops = 4 * macs  # dW and dX matmuls
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


# --------------------------------------------------------------------------
# Pooling
# --------------------------------------------------------------------------
class MaxPool2D(Layer):
    """Max pooling with a square window and equal stride.

    The spatial dimensions must be divisible by ``pool_size``; the
    architectures in :mod:`repro.nn.architectures` are built so that this
    always holds.

    Instead of materialising a 6-D boolean mask plus a per-window tie-break
    matrix on every forward pass, the layer caches one flat ``intp`` index
    per pooling window — the position of the window's first maximum in the
    flattened input — and the backward pass scatters the upstream gradient
    through those indices.  Ties resolve to the first maximum in row-major
    window order, exactly as before.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        self.pool_size = pool_size
        self._cache_flat_idx: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, ...]] = None
        self._idx_scratch: Optional[np.ndarray] = None
        self._eq_scratch: Optional[np.ndarray] = None
        self._base_shape: Optional[Tuple[int, ...]] = None
        self._base_offsets: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if h % self.pool_size or w % self.pool_size:
            raise ValueError(
                f"MaxPool2D requires spatial dims divisible by {self.pool_size}, got {input_shape}"
            )
        return (c, h // self.pool_size, w // self.pool_size)

    def _window_base_offsets(self, shape: Tuple[int, int, int, int]) -> np.ndarray:
        """Flat index of each pooling window's top-left corner (cached per shape)."""
        if self._base_shape == shape and self._base_offsets is not None:
            return self._base_offsets
        n, c, h, w = shape
        p = self.pool_size
        rows = np.arange(0, h, p, dtype=np.intp) * w
        cols = np.arange(0, w, p, dtype=np.intp)
        plane = (rows[:, None] + cols[None, :]).ravel()  # (h//p * w//p,)
        images = np.arange(n * c, dtype=np.intp) * (h * w)
        self._base_offsets = (images[:, None] + plane[None, :]).ravel()
        self._base_shape = shape
        return self._base_offsets

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"MaxPool2D input spatial dims {h}x{w} not divisible by {p}")
        reshaped = x.reshape(n, c, h // p, p, w // p, p)
        # One strided view per in-window position, in row-major window order;
        # a pairwise np.maximum sweep over these is far faster than an
        # axis-reduction over tiny p*p rows (and bit-identical: max is exact).
        columns = [reshaped[:, :, :, i, :, j] for i in range(p) for j in range(p)]
        out = np.empty((n, c, h // p, w // p), dtype=x.dtype)
        if len(columns) == 1:
            np.copyto(out, columns[0])
        else:
            np.maximum(columns[0], columns[1], out=out)
            for column in columns[2:]:
                np.maximum(out, column, out=out)

        if training:
            # First max of each window: sweep positions from last to first so
            # the smallest matching index wins, which reproduces the original
            # boolean-mask tie-break (first max in row-major window order).
            shape = out.shape
            idx = self._idx_scratch = _scratch(self._idx_scratch, shape, np.intp)
            eq = self._eq_scratch = _scratch(self._eq_scratch, shape, bool)
            idx.fill(len(columns) - 1)
            for t in range(len(columns) - 2, -1, -1):
                np.equal(columns[t], out, out=eq)
                np.copyto(idx, t, where=eq)
            flat = idx.reshape(-1)
            in_row, in_col = np.divmod(flat, p)
            np.multiply(in_row, w, out=in_row)
            in_row += in_col
            in_row += self._window_base_offsets(x.shape)
            self._cache_flat_idx = in_row
            self._cache_shape = x.shape

        self.last_forward_flops = x.size
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_flat_idx is None or self._cache_shape is None:
            raise RuntimeError("MaxPool2D.backward called before forward(training=True)")
        n, c, h, w = self._cache_shape
        grad = np.zeros(n * c * h * w, dtype=grad_out.dtype)
        grad[self._cache_flat_idx] = grad_out.ravel()
        self.last_backward_flops = grad.size
        return grad.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2D(pool_size={self.pool_size})"


# --------------------------------------------------------------------------
# Activations and reshaping
# --------------------------------------------------------------------------
class ReLU(Layer):
    """Rectified linear unit activation.

    The backward mask (``x > 0``) is stored in a compact boolean scratch
    buffer that is reused across same-shape batches.
    """

    def __init__(self) -> None:
        super().__init__()
        self._cache_mask: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if training:
            if self._cache_mask is None or self._cache_mask.shape != x.shape:
                self._cache_mask = np.empty(x.shape, dtype=bool)
            np.greater(x, 0.0, out=self._cache_mask)
        self.last_forward_flops = x.size
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            raise RuntimeError("ReLU.backward called before forward(training=True)")
        self.last_backward_flops = grad_out.size
        return grad_out * self._cache_mask


class Flatten(Layer):
    """Flatten ``(N, C, H, W)`` feature maps into ``(N, C*H*W)`` vectors."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache_shape = x.shape
        self.last_forward_flops = 0
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("Flatten.backward called before forward(training=True)")
        self.last_backward_flops = 0
        return grad_out.reshape(self._cache_shape)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        dtype: Optional[DtypeLike] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self._params["W"] = he_normal((in_features, out_features), in_features, rng, dtype=dtype)
        self._params["b"] = zeros((out_features,), dtype=dtype)
        self.zero_grad()
        self._cache_x: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache_x = x
        self.last_forward_flops = 2 * x.shape[0] * self.in_features * self.out_features
        out = x @ self._params["W"]
        out += self._params["b"]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("Dense.backward called before forward(training=True)")
        x = self._cache_x
        self._grads["W"] += x.T @ grad_out
        self._grads["b"] += grad_out.sum(axis=0)
        self.last_backward_flops = 4 * x.shape[0] * self.in_features * self.out_features
        return grad_out @ self._params["W"].T

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense({self.in_features}, {self.out_features})"


# --------------------------------------------------------------------------
# Residual block (used by the ResNet-style profiling architectures)
# --------------------------------------------------------------------------
class ResidualBlock(Layer):
    """Two-convolution residual block with identity (or projected) skip.

    ``out = ReLU(conv2(ReLU(conv1(x))) + skip(x))`` where ``skip`` is the
    identity when the channel counts match and a 1x1 convolution otherwise.
    Parameters of inner layers are exposed with ``conv1.``/``conv2.``/
    ``proj.`` prefixes so that the model-level weight dictionaries stay flat.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: Optional[np.random.Generator] = None,
        dtype: Optional[DtypeLike] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.conv1 = Conv2D(in_channels, out_channels, 3, padding=1, rng=rng, dtype=dtype)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, padding=1, rng=rng, dtype=dtype)
        self.relu_out = ReLU()
        self.proj: Optional[Conv2D] = None
        if in_channels != out_channels:
            self.proj = Conv2D(in_channels, out_channels, 1, rng=rng, dtype=dtype)
        self._sync_param_views()

    def _sublayers(self) -> List[Tuple[str, Layer]]:
        subs: List[Tuple[str, Layer]] = [("conv1", self.conv1), ("conv2", self.conv2)]
        if self.proj is not None:
            subs.append(("proj", self.proj))
        return subs

    def _sync_param_views(self) -> None:
        self._params = {}
        self._grads = {}
        for prefix, sub in self._sublayers():
            for key, value in sub.params.items():
                self._params[f"{prefix}.{key}"] = value
            for key, value in sub.grads.items():
                self._grads[f"{prefix}.{key}"] = value

    def zero_grad(self) -> None:
        for _, sub in self._sublayers():
            sub.zero_grad()
        self._sync_param_views()

    def rebase_parameters(
        self,
        param_views: Dict[str, np.ndarray],
        grad_views: Dict[str, np.ndarray],
    ) -> None:
        """Delegate rebasing to sub-layers, then refresh the flattened views."""
        for prefix, sub in self._sublayers():
            lead = prefix + "."
            sub.rebase_parameters(
                {key[len(lead):]: view for key, view in param_views.items() if key.startswith(lead)},
                {key[len(lead):]: view for key, view in grad_views.items() if key.startswith(lead)},
            )
        self._sync_param_views()

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return self.conv2.output_shape(self.conv1.output_shape(input_shape))

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        h = self.conv1.forward(x, training)
        h = self.relu1.forward(h, training)
        h = self.conv2.forward(h, training)
        shortcut = x if self.proj is None else self.proj.forward(x, training)
        out = self.relu_out.forward(h + shortcut, training)
        self.last_forward_flops = (
            self.conv1.last_forward_flops
            + self.relu1.last_forward_flops
            + self.conv2.last_forward_flops
            + (self.proj.last_forward_flops if self.proj is not None else 0)
            + self.relu_out.last_forward_flops
            + h.size
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_out)
        grad_h = self.conv2.backward(grad_sum)
        grad_h = self.relu1.backward(grad_h)
        grad_x = self.conv1.backward(grad_h)
        if self.proj is not None:
            grad_x = grad_x + self.proj.backward(grad_sum)
        else:
            grad_x = grad_x + grad_sum
        self._sync_param_views()
        self.last_backward_flops = (
            self.conv1.last_backward_flops
            + self.relu1.last_backward_flops
            + self.conv2.last_backward_flops
            + (self.proj.last_backward_flops if self.proj is not None else 0)
            + self.relu_out.last_backward_flops
            + grad_out.size
        )
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResidualBlock({self.in_channels}, {self.out_channels})"
