"""Neural-network layers with forward/backward passes and FLOP accounting.

Every layer exposes:

* :meth:`Layer.forward` / :meth:`Layer.backward` — real numpy math,
* :attr:`Layer.params` / :attr:`Layer.grads` — named parameter and gradient
  arrays (empty for stateless layers),
* :attr:`Layer.last_forward_flops` / :attr:`Layer.last_backward_flops` —
  the floating-point operation counts of the most recent forward/backward
  call.  The cluster simulator converts these counts into virtual seconds,
  which is how the reproduction recreates the heterogeneous training times
  of the paper's Docker/Kubernetes testbed without real CPU throttling.

Layers operate on ``float64`` arrays in ``(N, C, H, W)`` layout for images
and ``(N, F)`` layout for flat features.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.initializers import he_normal, zeros


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and keep
    ``self._params`` / ``self._grads`` dictionaries in sync.  Gradients are
    *accumulated into* ``self._grads`` on each backward call after being
    reset by :meth:`zero_grad`.
    """

    def __init__(self) -> None:
        self._params: Dict[str, np.ndarray] = {}
        self._grads: Dict[str, np.ndarray] = {}
        self.last_forward_flops: int = 0
        self.last_backward_flops: int = 0

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Named trainable parameters of this layer."""
        return self._params

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Named gradients, matching :attr:`params` keys and shapes."""
        return self._grads

    def zero_grad(self) -> None:
        """Reset all gradient buffers to zero."""
        for key, value in self._params.items():
            self._grads[key] = np.zeros_like(value)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self._params.values()))

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape (excluding the batch dimension) produced for ``input_shape``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}()"


# --------------------------------------------------------------------------
# im2col helpers
# --------------------------------------------------------------------------
def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kh, kw:
        Kernel height and width.
    stride:
        Stride of the convolution.
    pad:
        Symmetric zero padding applied to both spatial dimensions.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(N, out_h, out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    # (N, out_h, out_w, C*kh*kw)
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n, out_h, out_w, c * kh * kw)


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, accumulating overlapping patches."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    cols = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)

    x_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if pad > 0:
        return x_padded[:, :, pad:-pad, pad:-pad]
    return x_padded


# --------------------------------------------------------------------------
# Convolution
# --------------------------------------------------------------------------
class Conv2D(Layer):
    """2D convolution layer (``NCHW`` layout) implemented with im2col.

    Parameters
    ----------
    in_channels, out_channels:
        Number of input and output feature maps.
    kernel_size:
        Side of the square convolution kernel.
    stride:
        Convolution stride (same in both spatial dimensions).
    padding:
        Symmetric zero padding.
    rng:
        Generator used for He-normal weight initialisation.  A default
        generator is created when omitted, which is convenient in tests but
        should be avoided in experiments that must be reproducible.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        fan_in = in_channels * kernel_size * kernel_size
        self._params["W"] = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        self._params["b"] = zeros((out_channels,))
        self.zero_grad()

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        k, s, p = self.kernel_size, self.stride, self.padding
        out_h = (h + 2 * p - k) // s + 1
        out_w = (w + 2 * p - k) // s + 1
        return (self.out_channels, out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n = x.shape[0]
        k = self.kernel_size
        cols = _im2col(x, k, k, self.stride, self.padding)
        out_h, out_w = cols.shape[1], cols.shape[2]

        w_mat = self._params["W"].reshape(self.out_channels, -1)
        out = cols.reshape(n * out_h * out_w, -1) @ w_mat.T + self._params["b"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        if training:
            self._cache_cols = cols
            self._cache_x_shape = x.shape

        # 2 flops (mul + add) per MAC.
        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_forward_flops = 2 * macs
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_x_shape is None:
            raise RuntimeError("Conv2D.backward called before forward(training=True)")
        n, _, out_h, out_w = grad_out.shape
        k = self.kernel_size
        cols = self._cache_cols
        w_mat = self._params["W"].reshape(self.out_channels, -1)

        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        cols_flat = cols.reshape(n * out_h * out_w, -1)

        grad_w = grad_flat.T @ cols_flat
        self._grads["W"] += grad_w.reshape(self._params["W"].shape)
        self._grads["b"] += grad_flat.sum(axis=0)

        grad_cols = grad_flat @ w_mat
        grad_x = _col2im(
            grad_cols.reshape(n, out_h, out_w, -1),
            self._cache_x_shape,
            k,
            k,
            self.stride,
            self.padding,
        )
        macs = n * out_h * out_w * self.out_channels * self.in_channels * k * k
        self.last_backward_flops = 4 * macs  # dW and dX matmuls
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


# --------------------------------------------------------------------------
# Pooling
# --------------------------------------------------------------------------
class MaxPool2D(Layer):
    """Max pooling with a square window and equal stride.

    The spatial dimensions must be divisible by ``pool_size``; the
    architectures in :mod:`repro.nn.architectures` are built so that this
    always holds.
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        self.pool_size = pool_size
        self._cache_mask: Optional[np.ndarray] = None
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        if h % self.pool_size or w % self.pool_size:
            raise ValueError(
                f"MaxPool2D requires spatial dims divisible by {self.pool_size}, got {input_shape}"
            )
        return (c, h // self.pool_size, w // self.pool_size)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p or w % p:
            raise ValueError(f"MaxPool2D input spatial dims {h}x{w} not divisible by {p}")
        reshaped = x.reshape(n, c, h // p, p, w // p, p)
        out = reshaped.max(axis=(3, 5))

        if training:
            expanded = out[:, :, :, None, :, None]
            mask = (reshaped == expanded)
            # Break ties so gradients are not duplicated: keep only the first max
            # of each pooling window.  The mask axes are (N, C, H', p, W', p);
            # bring the two window axes together before flattening them.
            flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(-1, p * p)
            first = np.argmax(flat, axis=1)
            single = np.zeros_like(flat)
            single[np.arange(flat.shape[0]), first] = True
            self._cache_mask = (
                single.reshape(n, c, h // p, w // p, p, p).transpose(0, 1, 2, 4, 3, 5)
            )
            self._cache_shape = x.shape

        self.last_forward_flops = x.size
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_mask is None or self._cache_shape is None:
            raise RuntimeError("MaxPool2D.backward called before forward(training=True)")
        n, c, h, w = self._cache_shape
        p = self.pool_size
        grad = np.zeros((n, c, h // p, p, w // p, p), dtype=grad_out.dtype)
        grad += grad_out[:, :, :, None, :, None]
        grad *= self._cache_mask
        self.last_backward_flops = grad.size
        return grad.reshape(n, c, h, w)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2D(pool_size={self.pool_size})"


# --------------------------------------------------------------------------
# Activations and reshaping
# --------------------------------------------------------------------------
class ReLU(Layer):
    """Rectified linear unit activation."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_mask: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return input_shape

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if training:
            self._cache_mask = x > 0.0
        self.last_forward_flops = x.size
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            raise RuntimeError("ReLU.backward called before forward(training=True)")
        self.last_backward_flops = grad_out.size
        return grad_out * self._cache_mask


class Flatten(Layer):
    """Flatten ``(N, C, H, W)`` feature maps into ``(N, C*H*W)`` vectors."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache_shape = x.shape
        self.last_forward_flops = 0
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("Flatten.backward called before forward(training=True)")
        self.last_backward_flops = 0
        return grad_out.reshape(self._cache_shape)


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self._params["W"] = he_normal((in_features, out_features), in_features, rng)
        self._params["b"] = zeros((out_features,))
        self.zero_grad()
        self._cache_x: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cache_x = x
        self.last_forward_flops = 2 * x.shape[0] * self.in_features * self.out_features
        return x @ self._params["W"] + self._params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError("Dense.backward called before forward(training=True)")
        x = self._cache_x
        self._grads["W"] += x.T @ grad_out
        self._grads["b"] += grad_out.sum(axis=0)
        self.last_backward_flops = 4 * x.shape[0] * self.in_features * self.out_features
        return grad_out @ self._params["W"].T

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dense({self.in_features}, {self.out_features})"


# --------------------------------------------------------------------------
# Residual block (used by the ResNet-style profiling architectures)
# --------------------------------------------------------------------------
class ResidualBlock(Layer):
    """Two-convolution residual block with identity (or projected) skip.

    ``out = ReLU(conv2(ReLU(conv1(x))) + skip(x))`` where ``skip`` is the
    identity when the channel counts match and a 1x1 convolution otherwise.
    Parameters of inner layers are exposed with ``conv1.``/``conv2.``/
    ``proj.`` prefixes so that the model-level weight dictionaries stay flat.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.conv1 = Conv2D(in_channels, out_channels, 3, padding=1, rng=rng)
        self.relu1 = ReLU()
        self.conv2 = Conv2D(out_channels, out_channels, 3, padding=1, rng=rng)
        self.relu_out = ReLU()
        self.proj: Optional[Conv2D] = None
        if in_channels != out_channels:
            self.proj = Conv2D(in_channels, out_channels, 1, rng=rng)
        self._sync_param_views()

    def _sublayers(self) -> List[Tuple[str, Layer]]:
        subs: List[Tuple[str, Layer]] = [("conv1", self.conv1), ("conv2", self.conv2)]
        if self.proj is not None:
            subs.append(("proj", self.proj))
        return subs

    def _sync_param_views(self) -> None:
        self._params = {}
        self._grads = {}
        for prefix, sub in self._sublayers():
            for key, value in sub.params.items():
                self._params[f"{prefix}.{key}"] = value
            for key, value in sub.grads.items():
                self._grads[f"{prefix}.{key}"] = value

    def zero_grad(self) -> None:
        for _, sub in self._sublayers():
            sub.zero_grad()
        self._sync_param_views()

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return self.conv2.output_shape(self.conv1.output_shape(input_shape))

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        h = self.conv1.forward(x, training)
        h = self.relu1.forward(h, training)
        h = self.conv2.forward(h, training)
        shortcut = x if self.proj is None else self.proj.forward(x, training)
        out = self.relu_out.forward(h + shortcut, training)
        self.last_forward_flops = (
            self.conv1.last_forward_flops
            + self.relu1.last_forward_flops
            + self.conv2.last_forward_flops
            + (self.proj.last_forward_flops if self.proj is not None else 0)
            + self.relu_out.last_forward_flops
            + h.size
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_out)
        grad_h = self.conv2.backward(grad_sum)
        grad_h = self.relu1.backward(grad_h)
        grad_x = self.conv1.backward(grad_h)
        if self.proj is not None:
            grad_x = grad_x + self.proj.backward(grad_sum)
        else:
            grad_x = grad_x + grad_sum
        self._sync_param_views()
        self.last_backward_flops = (
            self.conv1.last_backward_flops
            + self.relu1.last_backward_flops
            + self.conv2.last_backward_flops
            + (self.proj.last_backward_flops if self.proj is not None else 0)
            + self.relu_out.last_backward_flops
            + grad_out.size
        )
        return grad_x

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResidualBlock({self.in_channels}, {self.out_channels})"
