"""Weight initialisation helpers for the numpy neural-network substrate.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every model in a simulated federated cluster can be constructed
deterministically from a seed.  This is essential for reproducing the
paper's experiments: the federator and every client must start from the
same global model.
"""

from __future__ import annotations

import numpy as np


def he_normal(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks.

    Parameters
    ----------
    shape:
        Shape of the weight tensor to create.
    fan_in:
        Number of input units feeding each output unit.
    rng:
        Source of randomness.
    """
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation, used for biases."""
    return np.zeros(shape, dtype=np.float64)
