"""Weight initialisation helpers for the numpy neural-network substrate.

All initialisers take an explicit :class:`numpy.random.Generator` so that
every model in a simulated federated cluster can be constructed
deterministically from a seed.  This is essential for reproducing the
paper's experiments: the federator and every client must start from the
same global model.

Random draws always happen in ``float64`` and are cast to the compute
dtype afterwards, so a ``float32`` model is the *rounded* version of the
corresponding ``float64`` model — the underlying random stream (and hence
seed bookkeeping) is identical in both modes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.dtype import DtypeLike, resolve_dtype


def he_normal(
    shape: tuple,
    fan_in: int,
    rng: np.random.Generator,
    dtype: Optional[DtypeLike] = None,
) -> np.ndarray:
    """He (Kaiming) normal initialisation, suited to ReLU networks.

    Parameters
    ----------
    shape:
        Shape of the weight tensor to create.
    fan_in:
        Number of input units feeding each output unit.
    rng:
        Source of randomness.
    dtype:
        Target dtype; defaults to the global compute dtype.
    """
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(resolve_dtype(dtype), copy=False)


def xavier_uniform(
    shape: tuple,
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    dtype: Optional[DtypeLike] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype), copy=False)


def zeros(shape: tuple, dtype: Optional[DtypeLike] = None) -> np.ndarray:
    """All-zero initialisation, used for biases."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))
