"""Loss functions for the numpy substrate.

The paper trains image classifiers with the cross-entropy loss; this module
provides a numerically stable softmax cross-entropy with the gradient with
respect to the logits.

The loss follows the dtype of the incoming logits (``float32`` on the
default fast path, ``float64`` opt-in); the scalar batch mean is always
accumulated in ``float64`` so that reported losses stay stable regardless
of the compute dtype.  In ``float64`` mode every value is bit-identical
with the seed implementation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised by max subtraction."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    The loss is averaged over the batch.  :meth:`forward_backward` returns
    both the scalar loss and the gradient with respect to the logits, which
    the model feeds into the classifier backward pass (phase ``bc``).
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = softmax(logits)
        n = logits.shape[0]
        picked = probs[np.arange(n), labels]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None)), dtype=np.float64))

    def forward_backward(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Compute the loss and its gradient w.r.t. ``logits`` in one pass."""
        probs = softmax(logits)
        n = logits.shape[0]
        picked = probs[np.arange(n), labels]
        loss = float(-np.mean(np.log(np.clip(picked, 1e-12, None)), dtype=np.float64))
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return loss, grad
