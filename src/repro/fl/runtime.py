"""End-to-end experiment assembly and execution.

:func:`build_experiment` turns an :class:`repro.fl.config.ExperimentConfig`
into a ready-to-run system: synthetic dataset, client partitions,
heterogeneous cluster, one :class:`repro.fl.client.FLClient` per node and
the federator implementing the requested algorithm.  :func:`run_experiment`
runs the simulation to completion and returns the
:class:`repro.fl.metrics.ExperimentResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.data.datasets import load_dataset
from repro.data.partition import ClientPartition, PartitionPlan, plan_partition
from repro.fl.client import FLClient
from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.fl.federator import BaseFederator
from repro.fl.metrics import ExperimentResult
from repro.nn.architectures import build_model
from repro.nn.dtype import resolve_dtype, using_dtype
from repro.registry import FEDERATORS
from repro.fl.transport import build_transport
from repro.simulation.cluster import SimulatedCluster
from repro.simulation.dynamics import ScenarioDynamics
from repro.simulation.network import FaultProfile, LinkSpec
from repro.simulation.virtual_pool import VIRTUAL_POOL_AUTO_THRESHOLD, VirtualClientPool
from repro.simulation.resources import (
    ResourceProfile,
    speeds_with_variance,
    tiered_speed_profiles,
    uniform_speed_profiles,
)


@dataclass
class ExperimentHandle:
    """Everything :func:`build_experiment` creates, for inspection by tests.

    Under the virtualized client pool (``config.client_pool``), ``clients``
    and ``partitions`` are empty — the cohort exists as descriptors in
    ``pool`` and shards derive on demand from ``partition_plan``; use
    :meth:`active_clients` for whatever is hydrated right now.
    """

    config: ExperimentConfig
    cluster: SimulatedCluster
    federator: BaseFederator
    clients: List[FLClient]
    partitions: List[ClientPartition]
    #: The scenario driver, when the config's dynamics are active.
    dynamics: Optional["ScenarioDynamics"] = None
    #: The virtual client pool, when the config selects virtualization.
    pool: Optional[VirtualClientPool] = None
    #: Lazy shard derivation (always present; source of ``partitions``).
    partition_plan: Optional[PartitionPlan] = None

    def active_clients(self) -> List[FLClient]:
        """The live client actors: all of them (eager) or the hydrated ones."""
        if self.pool is not None:
            return self.pool.hydrated_clients()
        return list(self.clients)

    def run(self) -> ExperimentResult:
        """Start the federator and run the simulation to completion."""
        try:
            self.federator.start()
            self.cluster.run()
            return self.federator.result
        finally:
            executor = getattr(self.cluster, "batched_executor", None)
            if executor is not None:
                executor.close()


def _build_profiles(resources: ResourceConfig, num_clients: int, rng: np.random.Generator) -> List[ResourceProfile]:
    """Instantiate client resource profiles from the resource configuration."""
    if resources.scheme == "uniform":
        return uniform_speed_profiles(
            num_clients,
            low=resources.low,
            high=resources.high,
            rng=rng,
            base_flops_per_second=resources.base_flops_per_second,
        )
    if resources.scheme == "variance":
        return speeds_with_variance(
            num_clients,
            mean=resources.mean,
            variance=resources.variance,
            rng=rng,
            base_flops_per_second=resources.base_flops_per_second,
        )
    if resources.scheme == "tiers":
        return tiered_speed_profiles(
            num_clients,
            tiers=resources.tiers,
            rng=rng,
            base_flops_per_second=resources.base_flops_per_second,
        )
    if resources.scheme == "explicit":
        speeds = list(resources.explicit_speeds or [])
        if len(speeds) < num_clients:
            raise ValueError(
                f"explicit_speeds has {len(speeds)} entries but {num_clients} clients are required"
            )
        return [
            ResourceProfile(
                speed_fraction=float(speed),
                base_flops_per_second=resources.base_flops_per_second,
            )
            for speed in speeds[:num_clients]
        ]
    raise ValueError(f"unknown resource scheme {resources.scheme!r}")


def available_algorithms() -> Tuple[str, ...]:
    """All algorithm names :func:`federator_class` accepts, sorted.

    Derived from :data:`repro.registry.FEDERATORS`, so the listing always
    matches the CLI help, ``repro list`` and the error message below.
    """
    return FEDERATORS.names()


def federator_class(algorithm: str) -> Type[BaseFederator]:
    """Resolve an algorithm name to its federator class.

    Resolution goes through the central plugin registry
    (:data:`repro.registry.FEDERATORS`): built-in baselines are declared
    lazily and imported on first use; third-party federators registered via
    :func:`repro.registry.register_federator` resolve the same way.  An
    unknown name raises ``ValueError`` listing every valid algorithm.
    """
    return FEDERATORS.get(algorithm)


def _estimate_client_batch_seconds(
    cluster: SimulatedCluster,
    config: ExperimentConfig,
    sample_x: np.ndarray,
    sample_y: np.ndarray,
) -> Dict[int, float]:
    """Per-client full-batch durations (used by TiFL's offline profiling)."""
    rng = np.random.default_rng(config.seed)
    model = build_model(config.architecture, rng=rng)
    batch = min(config.batch_size, sample_x.shape[0])
    trace = model.phase_trace_for_batch(sample_x[:batch], sample_y[:batch])
    return {
        client_id: cluster.cost_model.batch_seconds(trace, cluster.profile(client_id))
        for client_id in cluster.client_ids
    }


def _cast_dataset(dataset, dtype: np.dtype):
    """Cast a dataset's images to the compute dtype once, ahead of training.

    Doing the cast here keeps the per-batch path allocation-free: batch
    loaders slice pre-cast arrays, so ``SplitCNN`` never needs to convert
    inputs.  A no-op (returning the same object) when the dtype matches.
    """
    if dataset.x_train.dtype == dtype and dataset.x_test.dtype == dtype:
        return dataset
    return dataclasses.replace(
        dataset,
        x_train=dataset.x_train.astype(dtype),
        x_test=dataset.x_test.astype(dtype),
    )


def build_experiment(config: ExperimentConfig) -> ExperimentHandle:
    """Assemble a complete experiment from its configuration.

    The experiment's compute dtype (``config.dtype``, else the process-wide
    default from ``REPRO_DTYPE``) is applied to every model built here and
    to the dataset arrays; simulated times are dtype-independent.
    """
    with using_dtype(resolve_dtype(config.dtype)) as dtype:
        return _build_experiment(config, dtype)


def uses_virtual_pool(config: ExperimentConfig) -> bool:
    """Whether this configuration materializes clients through the pool.

    ``"auto"`` (the default) virtualizes cohorts larger than
    :data:`~repro.simulation.virtual_pool.VIRTUAL_POOL_AUTO_THRESHOLD`
    clients, keeping the historical small profiles on the eager path.
    """
    if config.client_pool == "eager":
        return False
    if config.client_pool == "virtual":
        return True
    return config.num_clients > VIRTUAL_POOL_AUTO_THRESHOLD


def uses_batched_execution(config: ExperimentConfig) -> bool:
    """Whether this configuration installs the batched compute engine.

    ``"auto"`` (the default) batches rounds with
    :data:`~repro.nn.batched.BATCHED_AUTO_MIN_CLIENTS` or more
    participants; smaller rounds stay on the per-client path, whose
    numerics the batched engine reproduces bitwise anyway.
    """
    if config.batched_execution == "off":
        return False
    if config.batched_execution == "on":
        return True
    from repro.nn.batched import BATCHED_AUTO_MIN_CLIENTS

    return config.effective_clients_per_round >= BATCHED_AUTO_MIN_CLIENTS


def uses_sharded_execution(config: ExperimentConfig) -> bool:
    """Whether this configuration shards the compute plane across workers.

    Sharding rides on the batched engine (its cohorts are what gets
    dispatched) and on the synchronous round structure (async federators
    never plan cohorts, so worker processes would only idle).  Results
    are bitwise identical either way; this gate only decides whether
    worker processes are worth spawning.
    """
    if config.shards < 2 or not uses_batched_execution(config):
        return False
    federator_cls = federator_class(config.algorithm)
    return bool(getattr(federator_cls, "checkpoint_bootstraps_round", True))


def _build_experiment(config: ExperimentConfig, dtype: np.dtype) -> ExperimentHandle:
    rng = np.random.default_rng(config.seed)

    dataset = load_dataset(
        config.dataset,
        train_size=config.train_size,
        test_size=config.test_size,
        seed=config.seed,
    )
    dataset = _cast_dataset(dataset, dtype)
    # The plan performs the same draws eager partitioning would, so the rng
    # stays in sync for the profile generation below regardless of mode.
    plan = plan_partition(
        dataset,
        config.num_clients,
        scheme=config.partition,
        classes_per_client=config.classes_per_client,
        alpha=config.dirichlet_alpha,
        rng=rng,
    )
    virtual = uses_virtual_pool(config)
    partitions: List[ClientPartition] = [] if virtual else plan.materialize()

    profiles = _build_profiles(config.resources, config.num_clients, rng)
    cluster = SimulatedCluster(
        profiles,
        default_link=LinkSpec(
            latency_s=config.network_latency_s,
            bandwidth_bytes_per_s=config.network_bandwidth_bytes_per_s,
        ),
        seed=config.seed,
    )

    # Unreliable transport: install the fault injector and the reliable
    # channel *before* any node registers a handler.  A null transport
    # without loss bursts installs nothing, keeping the wire bitwise
    # identical to the historical reliable network.
    transport_cfg = config.transport
    if transport_cfg.injects_faults() or config.dynamics.loss_burst_rate_per_s > 0:
        cluster.network.fault_profile = FaultProfile(
            drop_rate=transport_cfg.drop_rate,
            duplicate_rate=transport_cfg.duplicate_rate,
            reorder_rate=transport_cfg.reorder_rate,
            reorder_max_delay_s=transport_cfg.reorder_max_delay_s,
            corrupt_rate=transport_cfg.corrupt_rate,
            kinds=tuple(transport_cfg.fault_kinds),
            seed=config.seed,
        )
    if transport_cfg.reliable:
        cluster.install_transport(
            build_transport(cluster.network, cluster.env, transport_cfg, seed=config.seed)
        )

    if uses_sharded_execution(config):
        # Sharded compute plane: cohorts dispatch to worker processes, and
        # the hierarchical aggregation tree hangs off the executor.
        from repro.simulation.shard import ShardedClientExecutor

        cluster.batched_executor = ShardedClientExecutor(
            num_shards=config.shards,
            num_clients=config.num_clients,
            architecture=config.architecture,
            seed=config.seed,
            aggregate_mode=config.shard_aggregate,
        )
    elif uses_batched_execution(config):
        # Installed before any client registers so every FLClient discovers
        # it at construction time; async federators never plan rounds
        # through it, so it is inert (but harmless) for them.
        from repro.nn.batched import BatchedClientExecutor

        cluster.batched_executor = BatchedClientExecutor()

    global_model = build_model(config.architecture, rng=np.random.default_rng(config.seed))

    def client_model_factory():
        # Every client model starts from the same seeded initializer (as in
        # the eager path); TRAIN_REQUESTs overwrite the weights anyway.
        # Pin the experiment dtype explicitly: the virtual pool calls this
        # lazily at hydration time, long after build_experiment's
        # using_dtype context has exited, and the ambient default may
        # differ from the config's dtype.
        with using_dtype(dtype):
            return build_model(config.architecture, rng=np.random.default_rng(config.seed))

    clients: List[FLClient] = []
    pool: Optional[VirtualClientPool] = None
    if virtual:
        pool = VirtualClientPool(
            cluster,
            config,
            dataset,
            plan,
            model_factory=client_model_factory,
            slots=config.pool_slots,
        )
    else:
        for partition in partitions:
            clients.append(
                FLClient(
                    client_id=partition.client_id,
                    cluster=cluster,
                    model=client_model_factory(),
                    x_train=dataset.x_train[partition.indices],
                    y_train=dataset.y_train[partition.indices],
                    config=config,
                    class_counts=partition.class_counts,
                )
            )

    federator_cls = federator_class(config.algorithm)
    extra_kwargs: Dict[str, object] = {}
    if config.algorithm == "aergia":
        from repro.core.enclave import SGXEnclave, seal_distribution

        enclave = SGXEnclave(seed=config.seed)
        report = enclave.attest()
        for client_id in range(config.num_clients):
            # Class counts derive from the plan one client at a time: no
            # shard materialization even for virtualized cohorts.
            counts = (
                partitions[client_id].class_counts
                if partitions
                else plan.class_counts_for(client_id)
            )
            enclave.submit_distribution(seal_distribution(client_id, counts, report))
        extra_kwargs["enclave"] = enclave
    elif config.algorithm == "tifl":
        extra_kwargs["client_batch_seconds"] = _estimate_client_batch_seconds(
            cluster, config, dataset.x_train, dataset.y_train
        )

    federator = federator_cls(
        cluster=cluster,
        config=config,
        global_model=global_model,
        x_test=dataset.x_test,
        y_test=dataset.y_test,
        **extra_kwargs,
    )
    if pool is not None:
        federator.attach_client_pool(pool)

    dynamics: Optional[ScenarioDynamics] = None
    if config.dynamics.is_active():
        dynamics = ScenarioDynamics(
            cluster,
            config.dynamics,
            seed=config.seed,
            stop_when=lambda: federator.finished,
        )
        dynamics.install()

    return ExperimentHandle(
        config=config,
        cluster=cluster,
        federator=federator,
        clients=clients,
        partitions=partitions,
        dynamics=dynamics,
        pool=pool,
        partition_plan=plan,
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Build and run an experiment, returning its result."""
    return build_experiment(config).run()
