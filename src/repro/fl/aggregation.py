"""Model aggregation rules.

Two aggregation rules from the paper's evaluation are implemented:

* **FedAvg** (McMahan et al.) — the weighted average of client weights,
  with weights proportional to the clients' local dataset sizes.  Used by
  FedAvg, FedProx, TiFL, the deadline baseline and Aergia.
* **FedNova** (Wang et al.) — normalised averaging that removes the
  objective inconsistency caused by clients performing different numbers
  of local steps: each client's *update direction* is normalised by its
  number of steps before averaging, and the average direction is rescaled
  by the effective number of steps.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

Weights = Dict[str, np.ndarray]


def weighted_average(weight_sets: Sequence[Weights], coefficients: Sequence[float]) -> Weights:
    """Coefficient-weighted average of several weight dictionaries.

    Coefficients are normalised to sum to one.  All weight sets must share
    the same keys and shapes.
    """
    if not weight_sets:
        raise ValueError("cannot average an empty list of weight sets")
    if len(weight_sets) != len(coefficients):
        raise ValueError("weight_sets and coefficients must have the same length")
    total = float(sum(coefficients))
    if total <= 0:
        raise ValueError("coefficients must sum to a positive value")
    keys = set(weight_sets[0].keys())
    for weights in weight_sets[1:]:
        if set(weights.keys()) != keys:
            raise ValueError("all weight sets must have identical keys")

    averaged: Weights = {}
    for key in weight_sets[0]:
        accumulator = np.zeros_like(weight_sets[0][key])
        for weights, coefficient in zip(weight_sets, coefficients):
            accumulator += (coefficient / total) * weights[key]
        averaged[key] = accumulator
    return averaged


def fedavg_aggregate(updates: Sequence[Tuple[Weights, int]]) -> Weights:
    """FedAvg: average client weights proportionally to their dataset sizes.

    Parameters
    ----------
    updates:
        Sequence of ``(weights, num_samples)`` pairs.
    """
    if not updates:
        raise ValueError("FedAvg needs at least one client update")
    weight_sets = [weights for weights, _ in updates]
    sizes = [float(max(num_samples, 0)) for _, num_samples in updates]
    if sum(sizes) <= 0:
        sizes = [1.0] * len(updates)
    return weighted_average(weight_sets, sizes)


def fednova_aggregate(
    global_weights: Weights,
    updates: Sequence[Tuple[Weights, int, int]],
) -> Weights:
    """FedNova: normalised averaging of client updates.

    Parameters
    ----------
    global_weights:
        The global model the clients started the round from.
    updates:
        Sequence of ``(weights, num_samples, num_steps)`` triples, where
        ``num_steps`` is the number of local optimisation steps the client
        actually performed.

    Notes
    -----
    With ``d_k = (w_global - w_k) / tau_k`` the normalised update direction
    of client ``k`` and ``p_k`` the data-size weights, the new global model
    is ``w_global - tau_eff * sum_k p_k d_k`` with
    ``tau_eff = sum_k p_k tau_k``.  When every client performs the same
    number of steps this reduces exactly to FedAvg.
    """
    if not updates:
        raise ValueError("FedNova needs at least one client update")
    sizes = np.array([float(max(num_samples, 0)) for _, num_samples, _ in updates])
    if sizes.sum() <= 0:
        sizes = np.ones(len(updates))
    p = sizes / sizes.sum()
    taus = np.array([float(max(num_steps, 1)) for _, _, num_steps in updates])
    tau_eff = float(np.sum(p * taus))

    new_weights: Weights = {}
    for key, global_value in global_weights.items():
        direction = np.zeros_like(global_value)
        for (weights, _, _), p_k, tau_k in zip(updates, p, taus):
            direction += p_k * (global_value - weights[key]) / tau_k
        new_weights[key] = global_value - tau_eff * direction
    return new_weights


def average_metric(values: Sequence[float], sizes: Sequence[float]) -> float:
    """Data-size weighted average of a scalar metric (e.g. local losses)."""
    if not values:
        return 0.0
    sizes = [max(float(s), 0.0) for s in sizes]
    total = sum(sizes)
    if total <= 0:
        return float(np.mean(values))
    return float(sum(v * s for v, s in zip(values, sizes)) / total)
