"""Model aggregation rules.

Two aggregation rules from the paper's evaluation are implemented:

* **FedAvg** (McMahan et al.) — the weighted average of client weights,
  with weights proportional to the clients' local dataset sizes.  Used by
  FedAvg, FedProx, TiFL, the deadline baseline and Aergia.
* **FedNova** (Wang et al.) — normalised averaging that removes the
  objective inconsistency caused by clients performing different numbers
  of local steps: each client's *update direction* is normalised by its
  number of steps before averaging, and the average direction is rescaled
  by the effective number of steps.

Both rules run on **flat parameter vectors** (the federators feed them the
clients' ``TrainingResult.flat_weights`` directly): the reduction is a
handful of fused vector operations per client instead of a per-key Python
loop.  The reduction
accumulates client-by-client in a fixed order, so ``float64`` results are
bit-identical with the original per-key implementation.  The dictionary
entry points (:func:`weighted_average`, :func:`fedavg_aggregate`,
:func:`fednova_aggregate`) are thin adapters around the flat kernels, so
every existing caller keeps working.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

Weights = Dict[str, np.ndarray]

#: Layout of a flat weight vector: ordered (key, offset, size, shape) tuples.
WeightSpec = Tuple[Tuple[str, int, int, Tuple[int, ...]], ...]


# ---------------------------------------------------------------------------
# Flat packing / unpacking
# ---------------------------------------------------------------------------
def weight_spec(weights: Weights) -> WeightSpec:
    """Derive the flat layout of a weight dictionary (insertion order)."""
    spec: List[Tuple[str, int, int, Tuple[int, ...]]] = []
    offset = 0
    for key, value in weights.items():
        size = int(value.size)
        spec.append((key, offset, size, tuple(value.shape)))
        offset += size
    return tuple(spec)


def spec_size(spec: WeightSpec) -> int:
    """Total number of scalars described by a spec."""
    if not spec:
        return 0
    _, offset, size, _ = spec[-1]
    return offset + size


def flatten_weights(weights: Weights, spec: WeightSpec, out: np.ndarray = None) -> np.ndarray:
    """Pack a weight dictionary into one contiguous vector following ``spec``."""
    total = spec_size(spec)
    if out is None:
        dtype = np.result_type(*(weights[key].dtype for key, _, _, _ in spec)) if spec else np.float64
        out = np.empty(total, dtype=dtype)
    for key, offset, size, shape in spec:
        try:
            value = weights[key]
        except KeyError:
            raise ValueError(f"all weight sets must have identical keys (missing {key!r})") from None
        if tuple(value.shape) != shape:
            raise ValueError(
                f"shape mismatch for {key!r}: expected {shape}, got {tuple(value.shape)}"
            )
        out[offset : offset + size] = value.reshape(-1)
    return out


def unflatten_weights(vector: np.ndarray, spec: WeightSpec) -> Weights:
    """Unpack a flat vector into a weight dictionary following ``spec``."""
    weights: Weights = {}
    for key, offset, size, shape in spec:
        weights[key] = vector[offset : offset + size].reshape(shape).copy()
    return weights


# ---------------------------------------------------------------------------
# Flat reduction kernels
# ---------------------------------------------------------------------------
FlatRows = Sequence[np.ndarray]

#: Above this vector length the (K, P) stacking copy costs more than the
#: BLAS reduction saves, so the sequential fused loop is used instead.
_GEMV_MAX_SIZE = 16_384


def _as_rows(matrix_or_rows: FlatRows) -> List[np.ndarray]:
    """Normalise a (K, P) matrix or a sequence of K flat vectors to row views."""
    if isinstance(matrix_or_rows, np.ndarray):
        if matrix_or_rows.ndim != 2:
            raise ValueError("expected a (K, P) matrix of stacked flat weight vectors")
        return list(matrix_or_rows)
    rows = list(matrix_or_rows)
    for row in rows:
        if row.ndim != 1 or row.shape != rows[0].shape:
            raise ValueError("all flat weight vectors must be 1-D with identical shapes")
    return rows


def _normalised_coefficients(coefficients: Sequence[float]) -> List[float]:
    total = float(sum(coefficients))
    if total <= 0:
        raise ValueError("coefficients must sum to a positive value")
    return [float(coefficient) / total for coefficient in coefficients]


def _weighted_accumulate(
    rows: Iterable[np.ndarray],
    coefficients: Sequence[float],
    accumulator: np.ndarray,
    scratch: np.ndarray,
) -> np.ndarray:
    """Shared streaming reduction: ``accumulator += c_k * row_k`` per client.

    This is the single definition of the bit-order-sensitive FedAvg loop;
    the flat kernel and the dictionary adapter both stream their rows
    through it, so the two paths cannot diverge bitwise **in float64** (the
    mode carrying the bit-compatibility guarantee).  In float32 the flat
    kernel may instead take the BLAS branch in
    :func:`weighted_average_flat`, whose summation order differs at the
    ~1e-7 level.  ``rows`` may be a lazy iterator whose items reuse one
    buffer — each row is consumed before the next is produced.
    """
    for row, coefficient in zip(rows, coefficients):
        np.multiply(row, coefficient, out=scratch)
        accumulator += scratch
    return accumulator


def weighted_average_flat(matrix: FlatRows, coefficients: Sequence[float]) -> np.ndarray:
    """Coefficient-weighted average of flat weight vectors.

    ``matrix`` is a stacked ``(K, P)`` array or a sequence of ``K`` flat
    vectors (no stacking copy needed).  Coefficients are normalised to sum
    to one.  The accumulation runs client-by-client (deterministic order)
    with one fused multiply and one fused add per client, so it reproduces
    the per-key loop bit-for-bit in ``float64`` while touching each
    parameter only twice.
    """
    rows = _as_rows(matrix)
    if not rows:
        raise ValueError("weighted_average_flat needs at least one weight vector")
    if len(rows) != len(coefficients):
        raise ValueError("weight_sets and coefficients must have the same length")
    normalised = _normalised_coefficients(coefficients)
    if rows[0].dtype != np.float64 and rows[0].size <= _GEMV_MAX_SIZE:
        # Single BLAS reduction.  Its summation order differs from the
        # client-by-client loop, which only matters for the float64
        # bit-compatibility guarantee — so this path is float32-only; above
        # the size cutoff the stacking copy outweighs the BLAS win.
        stacked = np.stack(rows)
        return np.asarray(normalised, dtype=stacked.dtype) @ stacked
    accumulator = np.zeros(rows[0].shape, dtype=rows[0].dtype)
    return _weighted_accumulate(rows, normalised, accumulator, np.empty_like(accumulator))


def fedavg_aggregate_flat(matrix: FlatRows, sizes: Sequence[float]) -> np.ndarray:
    """FedAvg on flat vectors: dataset-size weighted average."""
    rows = _as_rows(matrix)
    if not rows:
        raise ValueError("FedAvg needs at least one client update")
    normalised = [float(max(size, 0)) for size in sizes]
    if sum(normalised) <= 0:
        normalised = [1.0] * len(rows)
    return weighted_average_flat(rows, normalised)


def _fednova_coefficients(
    sizes: Sequence[float], steps: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Data-size weights ``p``, step counts ``tau``, and ``tau_eff``."""
    size_arr = np.array([float(max(size, 0)) for size in sizes])
    if size_arr.sum() <= 0:
        size_arr = np.ones(len(size_arr))
    p = size_arr / size_arr.sum()
    taus = np.array([float(max(num_steps, 1)) for num_steps in steps])
    return p, taus, float(np.sum(p * taus))


def _fednova_reduce(
    global_vector: np.ndarray,
    rows: Iterable[np.ndarray],
    p: np.ndarray,
    taus: np.ndarray,
    tau_eff: float,
) -> np.ndarray:
    """Shared streaming FedNova reduction (single bit-order-sensitive loop).

    Same operation order as the original per-key loop:
    ``direction += p_k * (g - w_k) / tau_k`` then ``g - tau_eff * direction``.
    ``rows`` may be a lazy iterator whose items reuse one buffer.
    """
    direction = np.zeros_like(global_vector)
    scratch = np.empty_like(global_vector)
    for row, p_k, tau_k in zip(rows, p, taus):
        np.subtract(global_vector, row, out=scratch)
        scratch *= float(p_k)
        scratch /= float(tau_k)
        direction += scratch
    np.multiply(direction, tau_eff, out=scratch)
    return global_vector - scratch


def fednova_aggregate_flat(
    global_vector: np.ndarray,
    matrix: FlatRows,
    sizes: Sequence[float],
    steps: Sequence[int],
) -> np.ndarray:
    """FedNova on flat vectors (see :func:`fednova_aggregate`)."""
    rows = _as_rows(matrix)
    if not rows:
        raise ValueError("FedNova needs at least one client update")
    p, taus, tau_eff = _fednova_coefficients(sizes, steps)
    return _fednova_reduce(global_vector, rows, p, taus, tau_eff)


# ---------------------------------------------------------------------------
# Dictionary adapters (the public API used by the federators)
# ---------------------------------------------------------------------------
def weighted_average(weight_sets: Sequence[Weights], coefficients: Sequence[float]) -> Weights:
    """Coefficient-weighted average of several weight dictionaries.

    Coefficients are normalised to sum to one.  All weight sets must share
    the same keys and shapes.
    """
    if not weight_sets:
        raise ValueError("cannot average an empty list of weight sets")
    if len(weight_sets) != len(coefficients):
        raise ValueError("weight_sets and coefficients must have the same length")
    normalised = _normalised_coefficients(coefficients)
    spec = weight_spec(weight_sets[0])
    keys = set(weight_sets[0].keys())
    for weights in weight_sets[1:]:
        if set(weights.keys()) != keys:
            raise ValueError("all weight sets must have identical keys")
    if not spec:
        return {}
    # Flatten one client at a time into a reused row buffer and stream the
    # rows through the shared fused reduction — no (K, P) matrix, and the
    # exact operation order of the flat kernel.
    dtype = np.result_type(*(value.dtype for value in weight_sets[0].values()))
    accumulator = np.zeros(spec_size(spec), dtype=dtype)
    row = np.empty_like(accumulator)
    averaged = _weighted_accumulate(
        (flatten_weights(weights, spec, out=row) for weights in weight_sets),
        normalised,
        accumulator,
        np.empty_like(accumulator),
    )
    return unflatten_weights(averaged, spec)


def fedavg_aggregate(updates: Sequence[Tuple[Weights, int]]) -> Weights:
    """FedAvg: average client weights proportionally to their dataset sizes.

    Parameters
    ----------
    updates:
        Sequence of ``(weights, num_samples)`` pairs.
    """
    if not updates:
        raise ValueError("FedAvg needs at least one client update")
    sizes = [float(max(num_samples, 0)) for _, num_samples in updates]
    if sum(sizes) <= 0:
        sizes = [1.0] * len(updates)
    return weighted_average([weights for weights, _ in updates], sizes)


def fednova_aggregate(
    global_weights: Weights,
    updates: Sequence[Tuple[Weights, int, int]],
) -> Weights:
    """FedNova: normalised averaging of client updates.

    Parameters
    ----------
    global_weights:
        The global model the clients started the round from.
    updates:
        Sequence of ``(weights, num_samples, num_steps)`` triples, where
        ``num_steps`` is the number of local optimisation steps the client
        actually performed.

    Notes
    -----
    With ``d_k = (w_global - w_k) / tau_k`` the normalised update direction
    of client ``k`` and ``p_k`` the data-size weights, the new global model
    is ``w_global - tau_eff * sum_k p_k d_k`` with
    ``tau_eff = sum_k p_k tau_k``.  When every client performs the same
    number of steps this reduces exactly to FedAvg.
    """
    if not updates:
        raise ValueError("FedNova needs at least one client update")
    spec = weight_spec(global_weights)
    global_vector = flatten_weights(global_weights, spec)
    p, taus, tau_eff = _fednova_coefficients(
        [num_samples for _, num_samples, _ in updates],
        [num_steps for _, _, num_steps in updates],
    )
    row = np.empty_like(global_vector)
    new_vector = _fednova_reduce(
        global_vector,
        (flatten_weights(weights, spec, out=row) for weights, _, _ in updates),
        p,
        taus,
        tau_eff,
    )
    return unflatten_weights(new_vector, spec)


def average_metric(values: Sequence[float], sizes: Sequence[float]) -> float:
    """Data-size weighted average of a scalar metric (e.g. local losses)."""
    if not values:
        return 0.0
    sizes = [max(float(s), 0.0) for s in sizes]
    total = sum(sizes)
    if total <= 0:
        return float(np.mean(values))
    return float(sum(v * s for v, s in zip(values, sizes)) / total)
