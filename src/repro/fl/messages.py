"""Message kinds and structured payloads exchanged between nodes.

The testbed of the paper is message-passing only: nodes are isolated and
communicate through asynchronous RPC (§5.1).  The reproduction keeps the
same discipline — every interaction between the federator and the clients,
and between pairs of clients (model offloading), is a message routed
through the simulated network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nn.model import Phase


class MessageKind:
    """String tags identifying message types."""

    #: Federator -> client: start local training for a round.
    TRAIN_REQUEST = "train_request"
    #: Client -> federator: finished local training; payload is a TrainingResult.
    TRAIN_RESULT = "train_result"
    #: Client -> federator: online-profiler measurements (Aergia only).
    PROFILE_REPORT = "profile_report"
    #: Federator -> weak client: freeze and offload to the named strong client.
    OFFLOAD_INSTRUCTION = "offload_instruction"
    #: Federator -> strong client: expect an offloaded model from the named weak client.
    OFFLOAD_EXPECT = "offload_expect"
    #: Weak client -> strong client: the (frozen) model to train.
    OFFLOADED_MODEL = "offloaded_model"
    #: Strong client -> federator: trained feature layers of an offloaded model.
    OFFLOAD_RESULT = "offload_result"
    #: Client -> enclave (via federator host): encrypted class distribution.
    DISTRIBUTION_SUBMIT = "distribution_submit"


@dataclass
class ProfileReport:
    """Per-phase timing measurements reported by a client's online profiler.

    Attributes
    ----------
    client_id:
        Reporting client.
    round_number:
        Round the measurements belong to.
    phase_seconds:
        Mean duration (client-local seconds) of each of the four phases for
        one batch.
    batches_measured:
        Number of batches the profiler observed.
    batches_completed:
        Batches already executed when the report was sent (profiling
        batches included).
    remaining_batches:
        Local updates the client still has to perform in this round.
    """

    client_id: int
    round_number: int
    phase_seconds: Dict[Phase, float]
    batches_measured: int
    batches_completed: int
    remaining_batches: int

    @property
    def batch_seconds(self) -> float:
        """Mean duration of one full training batch."""
        return float(sum(self.phase_seconds.values()))

    @property
    def head_seconds(self) -> float:
        """Duration of phases 1-3 (ff + fc + bc), ``t_{j,{1,2,3}}`` in Algorithm 1."""
        return float(
            self.phase_seconds[Phase.FORWARD_FEATURES]
            + self.phase_seconds[Phase.FORWARD_CLASSIFIER]
            + self.phase_seconds[Phase.BACKWARD_CLASSIFIER]
        )

    @property
    def tail_seconds(self) -> float:
        """Duration of phase 4 (bf), ``t_{j,4}`` in Algorithm 1."""
        return float(self.phase_seconds[Phase.BACKWARD_FEATURES])

    @property
    def feature_training_seconds(self) -> float:
        """Cost of training only the feature layers (``x_b`` in Algorithm 2)."""
        return float(
            self.phase_seconds[Phase.FORWARD_FEATURES]
            + self.phase_seconds[Phase.FORWARD_CLASSIFIER]
            + self.phase_seconds[Phase.BACKWARD_FEATURES]
        )

    @property
    def estimated_remaining_seconds(self) -> float:
        """Projected time to finish the remaining local updates."""
        return self.remaining_batches * self.batch_seconds


@dataclass
class TrainingResult:
    """A client's contribution at the end of a round.

    ``weights`` is the per-key dictionary view (used by Aergia's
    recombination and by tests); ``flat_weights`` is the same state as one
    contiguous vector in :meth:`repro.nn.model.SplitCNN.get_flat_weights`
    layout.  The federators aggregate the flat vectors directly whenever a
    contribution is the client's verbatim model state, so the per-round
    reduction is a handful of fused vector operations.
    """

    client_id: int
    round_number: int
    weights: Dict[str, np.ndarray]
    num_samples: int
    num_steps: int
    train_loss: float
    features_frozen: bool = False
    offloaded_to: Optional[int] = None
    finished_at: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    flat_weights: Optional[np.ndarray] = field(default=None, repr=False)


@dataclass
class OffloadResult:
    """Feature layers of an offloaded model, trained by a strong client."""

    source_client_id: int
    trainer_client_id: int
    round_number: int
    feature_weights: Dict[str, np.ndarray]
    batches_trained: int
    finished_at: float = 0.0
