"""The synchronous federator (central server) base class.

The federator drives the global training loop of the paper (§2.2, §3.3):

1. select a subset of clients and send them the current global model,
2. wait for every selected client's update (subclasses can drop late
   clients — the deadline baseline — or orchestrate offloading — Aergia),
3. aggregate the updates into the next global model,
4. evaluate the global model on the held-out test set and record the round.

The round duration is measured exactly as in the paper: from the moment the
training requests are sent until the last participating client's results
arrive at the federator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.aggregation import (
    average_metric,
    fedavg_aggregate,
    fedavg_aggregate_flat,
    unflatten_weights,
    weight_spec,
)
from repro.fl.config import ExperimentConfig
from repro.fl.messages import MessageKind, OffloadResult, ProfileReport, TrainingResult
from repro.fl.metrics import ExperimentResult, RoundRecord
from repro.fl.selection import select_all, select_random
from repro.nn.model import SplitCNN
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.network import Message, weights_wire_bytes

Weights = Dict[str, np.ndarray]


@dataclass
class RoundState:
    """Book-keeping for the round currently in flight."""

    round_number: int
    start_time: float
    selected_clients: List[int]
    results: Dict[int, TrainingResult] = field(default_factory=dict)
    offload_results: Dict[int, OffloadResult] = field(default_factory=dict)
    profile_reports: Dict[int, ProfileReport] = field(default_factory=dict)
    dropped_clients: List[int] = field(default_factory=list)
    finalized: bool = False
    num_offloads: int = 0


class BaseFederator:
    """Synchronous federator; subclasses specialise selection, scheduling and
    aggregation to realise the different algorithms of the evaluation."""

    algorithm_name = "base"

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.config = config
        self.global_model = global_model
        self.global_weights: Weights = global_model.get_weights()
        self.x_test = x_test
        self.y_test = y_test
        self.client_ids: List[int] = (
            sorted(client_ids) if client_ids is not None else cluster.client_ids
        )
        self._rng = np.random.default_rng(config.seed + 1)
        self._round_state: Optional[RoundState] = None
        self._rounds_completed = 0
        self.setup_time = 0.0

        self.result = ExperimentResult(
            algorithm=self.algorithm_name,
            dataset=config.dataset,
            config=config.describe(),
        )
        self.network.register(FEDERATOR_ID, self.handle_message)

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Schedule the first round; call before running the simulation."""
        self.env.schedule(self.setup_time, self._start_round)

    @property
    def finished(self) -> bool:
        return self._rounds_completed >= self.config.rounds

    @property
    def current_round(self) -> int:
        return self._round_state.round_number if self._round_state else self._rounds_completed

    # ----------------------------------------------------------------- hooks
    def wants_profile_reports(self) -> bool:
        """Whether clients should run the online profiler and report timings."""
        return False

    def select_clients(self, round_number: int) -> List[int]:
        """Client-selection policy (FedAvg-style random selection by default)."""
        per_round = self.config.effective_clients_per_round
        if per_round >= len(self.client_ids):
            return select_all(self.client_ids)
        return select_random(self.client_ids, per_round, rng=self._rng)

    def total_batches_for(self, client_id: int, round_number: int) -> int:
        """Number of local updates a client performs in a round."""
        return self.config.local_updates

    def on_round_started(self, state: RoundState) -> None:
        """Hook called right after the training requests are sent."""

    def on_profile_report(self, state: RoundState, report: ProfileReport) -> None:
        """Hook called for every profile report received (Aergia overrides)."""

    def round_complete(self, state: RoundState) -> bool:
        """Whether all contributions needed to finalise the round have arrived."""
        if set(state.results) != set(state.selected_clients):
            return False
        for result in state.results.values():
            if result.offloaded_to is not None and result.client_id not in state.offload_results:
                return False
        return True

    def collect_contributions(self, state: RoundState) -> List[Tuple[Weights, int, int]]:
        """Build the (weights, num_samples, num_steps) list to aggregate."""
        contributions = []
        for client_id in sorted(state.results):
            result = state.results[client_id]
            contributions.append((result.weights, result.num_samples, result.num_steps))
        return contributions

    def flat_contributions(
        self, state: RoundState, contributions: List[Tuple[Weights, int, int]]
    ) -> Optional[List[np.ndarray]]:
        """Flat vectors for contributions that are verbatim client states.

        A contribution qualifies when its weight dictionary is the *same
        object* a client reported (so subclasses that post-process weights —
        e.g. Aergia's offload recombination — automatically fall back to the
        dictionary path) and the client attached a flat vector.  Returns
        ``None`` unless every contribution qualifies.
        """
        by_identity = {
            id(result.weights): result.flat_weights for result in state.results.values()
        }
        rows: List[np.ndarray] = []
        for weights, _, _ in contributions:
            row = by_identity.get(id(weights))
            if row is None:
                return None
            rows.append(row)
        return rows

    def aggregate(self, state: RoundState, contributions: List[Tuple[Weights, int, int]]) -> Weights:
        """Aggregation rule (FedAvg weighted average by default).

        The hot path stacks the clients' flat parameter vectors and runs one
        fused weighted reduction; the per-key dictionary implementation
        remains as the fallback for post-processed contributions.
        """
        rows = self.flat_contributions(state, contributions)
        if rows is not None:
            averaged = fedavg_aggregate_flat(rows, [n for _, n, _ in contributions])
            return unflatten_weights(averaged, weight_spec(contributions[0][0]))
        return fedavg_aggregate([(w, n) for w, n, _ in contributions])

    # -------------------------------------------------------------- round loop
    def _start_round(self) -> None:
        round_number = self._rounds_completed + 1
        selected = self.select_clients(round_number)
        state = RoundState(
            round_number=round_number,
            start_time=self.env.now,
            selected_clients=list(selected),
        )
        self._round_state = state
        for client_id in selected:
            payload = {
                "weights": self.global_weights,
                "total_batches": self.total_batches_for(client_id, round_number),
                "profile_batches": self.config.profile_batches,
                "report_profile": self.wants_profile_reports(),
            }
            self.network.send(
                FEDERATOR_ID,
                client_id,
                MessageKind.TRAIN_REQUEST,
                payload=payload,
                round_number=round_number,
                size_bytes=weights_wire_bytes(self.global_weights),
            )
        self.on_round_started(state)

    # --------------------------------------------------------------- messaging
    def handle_message(self, message: Message) -> None:
        state = self._round_state
        if state is None or state.finalized or message.round_number != state.round_number:
            # Late or stale messages are ignored, as in the paper (§3.3).
            return
        if message.kind == MessageKind.TRAIN_RESULT:
            result: TrainingResult = message.payload
            state.results[result.client_id] = result
            self._maybe_finalize(state)
        elif message.kind == MessageKind.OFFLOAD_RESULT:
            offload: OffloadResult = message.payload
            state.offload_results[offload.source_client_id] = offload
            self._maybe_finalize(state)
        elif message.kind == MessageKind.PROFILE_REPORT:
            report: ProfileReport = message.payload
            state.profile_reports[report.client_id] = report
            self.on_profile_report(state, report)

    def _maybe_finalize(self, state: RoundState) -> None:
        if not state.finalized and self.round_complete(state):
            self._finalize_round(state)

    # -------------------------------------------------------------- finalisation
    def _finalize_round(self, state: RoundState) -> None:
        state.finalized = True
        contributions = self.collect_contributions(state)
        if contributions:
            self.global_weights = self.aggregate(state, contributions)
        self.global_model.set_weights(self.global_weights)
        test_loss, test_accuracy = self.global_model.evaluate(self.x_test, self.y_test)

        completed = sorted(state.results)
        losses = [state.results[cid].train_loss for cid in completed]
        sizes = [state.results[cid].num_samples for cid in completed]
        record = RoundRecord(
            round_number=state.round_number,
            start_time=state.start_time,
            end_time=self.env.now,
            selected_clients=list(state.selected_clients),
            completed_clients=completed,
            dropped_clients=list(state.dropped_clients),
            num_offloads=state.num_offloads
            or sum(1 for r in state.results.values() if r.offloaded_to is not None),
            test_accuracy=test_accuracy,
            test_loss=test_loss,
            mean_train_loss=average_metric(losses, sizes),
        )
        self.result.add_round(record)
        self.result.setup_time = self.setup_time
        self._rounds_completed += 1
        self._round_state = None
        if not self.finished:
            self._start_round()


class FedAvgFederator(BaseFederator):
    """Plain FedAvg: random selection, wait for everyone, weighted average."""

    algorithm_name = "fedavg"
