"""The synchronous federator (central server) base class.

The federator drives the global training loop of the paper (§2.2, §3.3):

1. select a subset of clients and send them the current global model,
2. collect the selected clients' updates (subclasses can drop late
   clients — the deadline baseline — or orchestrate offloading — Aergia),
3. aggregate the updates into the next global model,
4. evaluate the global model on the held-out test set and record the round.

The round duration is measured exactly as in the paper: from the moment the
training requests are sent until the last participating client's results
arrive at the federator.

Round engine
------------
Since the scenario-dynamics refactor the round loop is an explicit
event-driven state machine that tolerates *partial participation*.  A round
moves through three phases::

    IDLE ──select──▶ COLLECTING ──complete / deadline / all-dropped──▶ FINALIZED
      ▲                  │
      │                  ├── TRAIN_RESULT / OFFLOAD_RESULT  (progress)
      │                  ├── per-client timeout   ──▶ drop client
      │                  └── dropout notification ──▶ drop client
      └──────────── next round (or wait for a client to rejoin)

* ``COLLECTING`` ends when :meth:`round_complete` holds — every *expected*
  client (selected minus dropped) has contributed — or when the round
  deadline (:meth:`round_deadline_seconds`) expires, in which case the
  stragglers are dropped and whatever arrived is aggregated.
* Clients drop out of a round in two ways: a *dropout notification* from
  the cluster (the client disconnected; its in-flight messages failed) or a
  *per-client timeout* (:meth:`client_timeout_seconds`, from
  ``config.dynamics.client_timeout_s``).
* :meth:`finalize_round` aggregates whatever arrived; an empty round leaves
  the global model unchanged, exactly like the paper's federator.
* If every client is offline when a round would start, the engine parks
  (``IDLE``) and restarts as soon as a client rejoins.

With no dynamics configured (no timeouts, no churn) the engine reduces to
the classic blocking behaviour and is bit-for-bit identical to the
pre-refactor round loop.  Subclasses specialise *policies* — selection
(TiFL), deadlines (the deadline baseline), scheduling (Aergia) — instead of
hand-rolling wait logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.fl.aggregation import (
    average_metric,
    fedavg_aggregate,
    fedavg_aggregate_flat,
    unflatten_weights,
    weight_spec,
)
from repro.fl.config import ExperimentConfig
from repro.fl.messages import MessageKind, OffloadResult, ProfileReport, TrainingResult
from repro.fl.metrics import ExperimentResult, RoundRecord
from repro.fl.selection import select_all, select_random
from repro.nn.model import SplitCNN
from repro.registry import register_federator
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.events import Event
from repro.simulation.network import Message, weights_wire_bytes

Weights = Dict[str, np.ndarray]


class RoundPhase:
    """States of the round engine's state machine."""

    #: No round in flight (between rounds, or parked waiting for a rejoin).
    IDLE = "idle"
    #: Training requests sent; collecting results, timeouts and dropouts.
    COLLECTING = "collecting"
    #: Aggregated and recorded; the state object is retired.
    FINALIZED = "finalized"


@dataclass
class RoundState:
    """Book-keeping for the round currently in flight."""

    round_number: int
    start_time: float
    selected_clients: List[int]
    phase: str = RoundPhase.COLLECTING
    results: Dict[int, TrainingResult] = field(default_factory=dict)
    offload_results: Dict[int, OffloadResult] = field(default_factory=dict)
    profile_reports: Dict[int, ProfileReport] = field(default_factory=dict)
    dropped_clients: List[int] = field(default_factory=list)
    #: Clients that disconnected at any point during the round (superset of
    #: the dropped ones: a client that already delivered its result keeps
    #: its contribution but can no longer act, e.g. as an offload trainer).
    disconnected: Set[int] = field(default_factory=set)
    num_offloads: int = 0
    #: Per-client timeout events, cancelled as results arrive.
    timeout_events: Dict[int, Event] = field(default_factory=dict)
    #: Round-deadline event, if the policy set one.
    deadline_event: Optional[Event] = None

    @property
    def finalized(self) -> bool:
        return self.phase == RoundPhase.FINALIZED

    @property
    def expected_clients(self) -> List[int]:
        """Clients whose contribution the round is still entitled to."""
        return [cid for cid in self.selected_clients if cid not in self.dropped_clients]

    @property
    def pending_clients(self) -> List[int]:
        """Expected clients that have not delivered a result yet."""
        return [cid for cid in self.expected_clients if cid not in self.results]


class BaseFederator:
    """Synchronous federator; subclasses specialise selection, scheduling and
    aggregation to realise the different algorithms of the evaluation."""

    algorithm_name = "base"

    #: Whether a resumed run must re-enter :meth:`_start_round` to continue
    #: (the synchronous engine checkpoints *before* the next round starts).
    #: Async federators are driven entirely by their restored in-flight
    #: messages and override this to ``False``.
    checkpoint_bootstraps_round = True

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        #: Message transport (reliable middleware or the direct pass-through);
        #: every federator send and the handler registration route through it.
        self.transport = cluster.transport
        self.config = config
        self.global_model = global_model
        self.global_weights: Weights = global_model.get_weights()
        self.x_test = x_test
        self.y_test = y_test
        self.client_ids: List[int] = (
            sorted(client_ids) if client_ids is not None else cluster.client_ids
        )
        self._rng = np.random.default_rng(config.seed + 1)
        #: Virtual client pool (large cohorts): selection works on client
        #: ids/descriptors and the winners are hydrated just before the
        #: round's training requests go out.  ``None`` on the eager path.
        self.client_pool = None
        self._round_state: Optional[RoundState] = None
        #: Set when a round could not start because no client was online;
        #: the next rejoin restarts the loop.
        self._round_pending = False
        self._rounds_completed = 0
        self.setup_time = 0.0
        #: Called at every checkpoint opportunity (see
        #: :class:`repro.fl.checkpoint.RunCheckpointer`); ``None`` when the
        #: run is not checkpointed.  The synchronous engine offers the
        #: boundary between rounds, *before* the next round starts.
        self.checkpoint_hook = None

        self.result = ExperimentResult(
            algorithm=self.algorithm_name,
            dataset=config.dataset,
            config=config.describe(),
        )
        #: Whether the unreliable-transport machinery is live for this run
        #: (fault injection and/or reliable delivery); gates the per-round
        #: fault-counter extras so null-transport records stay unchanged.
        self._transport_active = (
            cluster.network.fault_profile is not None or self.transport.reliable
        )
        #: Counter totals at the previous record emission (per-round deltas).
        self._net_baseline: Dict[str, float] = {}
        self.transport.register(FEDERATOR_ID, self.handle_message)
        self.transport.add_expiry_listener(self._on_transport_expiry)
        cluster.add_membership_listener(self._on_membership_change)

    # ---------------------------------------------------------------- lifecycle
    def attach_client_pool(self, pool) -> None:
        """Use a :class:`~repro.simulation.virtual_pool.VirtualClientPool`.

        Called by the runtime before :meth:`start` when the configuration
        virtualizes the cohort; the round engine then hydrates each round's
        selection via ``pool.ensure_active``.
        """
        self.client_pool = pool

    def start(self) -> None:
        """Schedule the first round; call before running the simulation."""
        self.env.schedule(self.setup_time, self._start_round)

    @property
    def finished(self) -> bool:
        return self._rounds_completed >= self.config.rounds

    @property
    def engine_phase(self) -> str:
        """Current state of the round engine (see :class:`RoundPhase`).

        ``IDLE`` between rounds (including when parked waiting for a client
        to rejoin), otherwise the in-flight round's phase.
        """
        if self._round_state is None:
            return RoundPhase.IDLE
        return self._round_state.phase

    @property
    def current_round(self) -> int:
        return self._round_state.round_number if self._round_state else self._rounds_completed

    # ----------------------------------------------------------------- hooks
    def wants_profile_reports(self) -> bool:
        """Whether clients should run the online profiler and report timings."""
        return False

    def client_has_data(self, client_id: int) -> bool:
        """Whether a client owns any training samples.

        Extreme non-IID splits of huge cohorts can leave clients with zero
        samples — the paper's sampling simply leaves such clients out, so
        selection skips them on both materialization paths (keeping virtual
        and eager runs of one config identical).  The virtual pool answers
        from the descriptor; the eager path from the attached actor.
        """
        if self.client_pool is not None:
            return self.client_pool.has_data(client_id)
        actor = self.cluster.actor(client_id)
        return actor is None or actor.num_samples > 0

    def selectable_clients(self) -> List[int]:
        """Clients eligible for selection: the online subset, in id order."""
        return [
            cid
            for cid in self.client_ids
            if self.cluster.is_online(cid) and self.client_has_data(cid)
        ]

    def select_clients(self, round_number: int) -> List[int]:
        """Client-selection policy (FedAvg-style random selection by default)."""
        pool = self.selectable_clients()
        per_round = self.config.effective_clients_per_round
        if per_round >= len(pool):
            return select_all(pool)
        return select_random(pool, per_round, rng=self._rng)

    def total_batches_for(self, client_id: int, round_number: int) -> int:
        """Number of local updates a client performs in a round."""
        return self.config.local_updates

    def on_round_started(self, state: RoundState) -> None:
        """Hook called right after the training requests are sent."""

    def on_profile_report(self, state: RoundState, report: ProfileReport) -> None:
        """Hook called for every profile report received (Aergia overrides)."""

    def on_client_dropped(self, state: RoundState, client_id: int) -> None:
        """Hook called when a client is dropped from the round in flight."""

    def round_deadline_seconds(self) -> Optional[float]:
        """Round-level deadline after which stragglers are dropped and the
        round finalises with whatever arrived (the deadline baseline's
        policy knob).  ``None`` disables the deadline."""
        return None

    def client_timeout_seconds(self) -> Optional[float]:
        """Per-client timeout measured from the round start.  Defaults to
        the scenario's ``dynamics.client_timeout_s`` (``None``: wait
        forever)."""
        return self.config.dynamics.client_timeout_s

    def round_complete(self, state: RoundState) -> bool:
        """Whether all contributions needed to finalise the round have arrived.

        The round is complete when every *expected* client (selected minus
        dropped) has delivered its result, and every promised offload result
        whose trainer is still connected has arrived.
        """
        expected = state.expected_clients
        if set(state.results) != set(expected):
            return False
        for result in state.results.values():
            if result.offloaded_to is not None and result.client_id not in state.offload_results:
                trainer = result.offloaded_to
                # An offload expectation is void when the trainer left the
                # round (it lost the offloaded model with its state).
                if trainer in state.disconnected or not self.cluster.is_online(trainer):
                    continue
                return False
        return True

    def collect_contributions(self, state: RoundState) -> List[Tuple[Weights, int, int]]:
        """Build the (weights, num_samples, num_steps) list to aggregate.

        Dropped clients are excluded from the aggregation weights even if a
        late result somehow landed in ``state.results``.
        """
        contributions = []
        for client_id in sorted(state.results):
            if client_id in state.dropped_clients:
                continue
            result = state.results[client_id]
            contributions.append((result.weights, result.num_samples, result.num_steps))
        return contributions

    def flat_contributions(
        self, state: RoundState, contributions: List[Tuple[Weights, int, int]]
    ) -> Optional[List[np.ndarray]]:
        """Flat vectors for contributions that are verbatim client states.

        A contribution qualifies when its weight dictionary is the *same
        object* a client reported (so subclasses that post-process weights —
        e.g. Aergia's offload recombination — automatically fall back to the
        dictionary path) and the client attached a flat vector.  Returns
        ``None`` unless every contribution qualifies.
        """
        by_identity = {
            id(result.weights): result.flat_weights for result in state.results.values()
        }
        rows: List[np.ndarray] = []
        for weights, _, _ in contributions:
            row = by_identity.get(id(weights))
            if row is None:
                return None
            rows.append(row)
        return rows

    def aggregate(self, state: RoundState, contributions: List[Tuple[Weights, int, int]]) -> Weights:
        """Aggregation rule (FedAvg weighted average by default).

        The hot path stacks the clients' flat parameter vectors and runs one
        fused weighted reduction; the per-key dictionary implementation
        remains as the fallback for post-processed contributions.  Under
        sharded execution the reduction runs through the executor's
        hierarchical aggregation tree (edge aggregators per shard, root
        merge) — bitwise identical to the flat path in its default
        ``"exact"`` mode.
        """
        rows = self.flat_contributions(state, contributions)
        if rows is not None:
            sizes = [n for _, n, _ in contributions]
            hierarchy = getattr(
                getattr(self.cluster, "batched_executor", None), "hierarchy", None
            )
            if hierarchy is not None:
                ordered = [
                    client_id
                    for client_id in sorted(state.results)
                    if client_id not in state.dropped_clients
                ]
                averaged = hierarchy.aggregate_flat(rows, sizes, ordered)
            else:
                averaged = fedavg_aggregate_flat(rows, sizes)
            return unflatten_weights(averaged, weight_spec(contributions[0][0]))
        return fedavg_aggregate([(w, n) for w, n, _ in contributions])

    # -------------------------------------------------------------- round loop
    def _start_round(self) -> None:
        round_number = self._rounds_completed + 1
        selected = self.select_clients(round_number)
        if not selected:
            # Every client is offline: park the engine; the membership
            # listener restarts it the moment a client rejoins.
            self._round_pending = True
            return
        self._round_pending = False
        if self.client_pool is not None:
            # Materialise the round's participants (recycling arena slots);
            # everything before this point touched descriptors only.
            self.client_pool.ensure_active(selected)
        state = RoundState(
            round_number=round_number,
            start_time=self.env.now,
            selected_clients=list(selected),
        )
        self._round_state = state
        totals = {cid: self.total_batches_for(cid, round_number) for cid in selected}
        executor = getattr(self.cluster, "batched_executor", None)
        if executor is not None:
            # Group this round's participants into lockstep cohorts; clients
            # claim their lanes when the TRAIN_REQUEST below reaches them.
            executor.plan_round(
                round_number,
                [(cid, self.cluster.actor(cid), totals[cid]) for cid in selected],
                self.global_model,
            )
        for client_id in selected:
            payload = {
                "weights": self.global_weights,
                "total_batches": totals[client_id],
                "profile_batches": self.config.profile_batches,
                "report_profile": self.wants_profile_reports(),
            }
            self.transport.send(
                FEDERATOR_ID,
                client_id,
                MessageKind.TRAIN_REQUEST,
                payload=payload,
                round_number=round_number,
                size_bytes=weights_wire_bytes(self.global_weights),
            )
        self.on_round_started(state)
        self._arm_round_timers(state)

    def _arm_round_timers(self, state: RoundState) -> None:
        """Schedule the round deadline and the per-client timeouts."""
        deadline = self.round_deadline_seconds()
        if deadline is not None:
            state.deadline_event = self.env.schedule(
                deadline, lambda: self._on_round_deadline(state)
            )
        timeout = self.client_timeout_seconds()
        if timeout is not None:
            for client_id in state.selected_clients:
                state.timeout_events[client_id] = self.env.schedule(
                    timeout, self._make_client_timeout(state, client_id)
                )

    def _make_client_timeout(self, state: RoundState, client_id: int):
        def fire() -> None:
            self._on_client_timeout(state, client_id)

        return fire

    def _cancel_round_timers(self, state: RoundState) -> None:
        if state.deadline_event is not None:
            state.deadline_event.cancel()
            state.deadline_event = None
        for event in state.timeout_events.values():
            event.cancel()
        state.timeout_events.clear()

    # --------------------------------------------------------------- messaging
    def handle_message(self, message: Message) -> None:
        state = self._round_state
        if state is None or state.finalized or message.round_number != state.round_number:
            # Late or stale messages are ignored, as in the paper (§3.3).
            return
        if message.kind == MessageKind.TRAIN_RESULT:
            result: TrainingResult = message.payload
            if result.client_id in state.dropped_clients:
                return  # already dropped: its contribution no longer counts
            state.results[result.client_id] = result
            timeout = state.timeout_events.pop(result.client_id, None)
            if timeout is not None:
                timeout.cancel()
            self._maybe_finalize(state)
        elif message.kind == MessageKind.OFFLOAD_RESULT:
            offload: OffloadResult = message.payload
            state.offload_results[offload.source_client_id] = offload
            self._maybe_finalize(state)
        elif message.kind == MessageKind.PROFILE_REPORT:
            report: ProfileReport = message.payload
            state.profile_reports[report.client_id] = report
            self.on_profile_report(state, report)

    # ----------------------------------------------------- dropouts & timeouts
    def _on_membership_change(self, client_id: int, online: bool) -> None:
        if online:
            self.on_client_rejoin(client_id)
        else:
            self.on_client_dropout(client_id)

    def on_client_dropout(self, client_id: int) -> None:
        """A client disconnected: drop it from the round in flight (if any)."""
        state = self._round_state
        if state is None or state.finalized or client_id not in state.selected_clients:
            return
        state.disconnected.add(client_id)
        if client_id not in state.results:
            self._drop_client(state, client_id)
        # Even when the client already contributed, its disconnect can void
        # an offload expectation, so completion must be re-evaluated.
        self._maybe_finalize(state)

    def on_client_rejoin(self, client_id: int) -> None:
        """A client reconnected: restart the loop if it was parked."""
        if self._round_pending and not self.finished:
            self._start_round()

    def _on_client_timeout(self, state: RoundState, client_id: int) -> None:
        if state.finalized or state is not self._round_state:
            return
        if client_id in state.results or client_id in state.dropped_clients:
            return
        self._drop_client(state, client_id)
        self._maybe_finalize(state)

    def _on_round_deadline(self, state: RoundState) -> None:
        if state.finalized or state is not self._round_state:
            return
        for client_id in state.pending_clients:
            self._drop_client(state, client_id)
        # Aggregate whatever arrived in time.  If nothing arrived, the global
        # model is left unchanged for this round (the paper's federator also
        # keeps the previous model in that case).
        self.finalize_round(state)

    #: Message kinds whose delivery failure means the round lost a client's
    #: contribution (graceful degradation drops the client, like a timeout).
    _EXPIRY_DROP_KINDS = frozenset(
        {MessageKind.TRAIN_REQUEST, MessageKind.TRAIN_RESULT}
    )

    def _on_transport_expiry(self, entry: dict) -> None:
        """A reliable send exhausted its retransmissions.

        An expired ``TRAIN_REQUEST`` (we could not reach the client) or
        ``TRAIN_RESULT`` (the client could not reach us) drops that client
        from the round in flight, so exhausted retries degrade the round
        instead of hanging it.  Other expiries (profile reports, offload
        plumbing) only re-evaluate completion: the round timers own those.
        """
        state = self._round_state
        if state is None or state.finalized:
            return
        if entry["sender"] == FEDERATOR_ID:
            client_id = entry["recipient"]
        elif entry["recipient"] == FEDERATOR_ID:
            client_id = entry["sender"]
        else:
            return  # client<->client offload traffic; round timers cover it
        if entry["round_number"] != state.round_number:
            return
        if (
            entry["kind"] in self._EXPIRY_DROP_KINDS
            and client_id in state.selected_clients
            and client_id not in state.results
            and client_id not in state.dropped_clients
        ):
            self._drop_client(state, client_id)
        self._maybe_finalize(state)

    def _drop_client(self, state: RoundState, client_id: int) -> None:
        """Remove a client from the round: it no longer counts towards
        completion and its (absent) update is excluded from aggregation."""
        if client_id in state.dropped_clients:
            return
        state.dropped_clients.append(client_id)
        timeout = state.timeout_events.pop(client_id, None)
        if timeout is not None:
            timeout.cancel()
        self.on_client_dropped(state, client_id)

    def _quorum_satisfied(self, state: RoundState) -> bool:
        """Whether the round may finalize early on a partial quorum.

        With ``transport.quorum_fraction < 1``, a round finalizes once that
        fraction of the selected clients has delivered *and* none of the
        stragglers has recoverable traffic still in flight on the reliable
        channel (an un-ACKed request or result may yet arrive; waiting for
        it is free because retries are bounded).
        """
        quorum = self.config.transport.quorum_fraction
        if quorum >= 1.0:
            return False
        needed = max(1, int(np.ceil(quorum * len(state.selected_clients))))
        delivered = sum(
            1 for cid in state.results if cid not in state.dropped_clients
        )
        if delivered < needed:
            return False
        return all(
            self.transport.pending_involving(cid, state.round_number) == 0
            for cid in state.pending_clients
        )

    def _maybe_finalize(self, state: RoundState) -> None:
        if state.finalized:
            return
        if self.round_complete(state):
            self.finalize_round(state)
            return
        if self._quorum_satisfied(state):
            for client_id in state.pending_clients:
                self._drop_client(state, client_id)
            self.finalize_round(state)

    # -------------------------------------------------------------- finalisation
    def finalize_round(self, state: RoundState) -> None:
        """Aggregate whatever arrived, evaluate, record, and move on.

        This is the single exit path of the ``COLLECTING`` phase, reached on
        normal completion, on the round deadline, or when every selected
        client dropped out.
        """
        state.phase = RoundPhase.FINALIZED
        self._cancel_round_timers(state)
        contributions = self.collect_contributions(state)
        if contributions:
            self.global_weights = self.aggregate(state, contributions)
        self.global_model.set_weights(self.global_weights)
        test_loss, test_accuracy = self.global_model.evaluate(self.x_test, self.y_test)

        completed = sorted(state.results)
        losses = [state.results[cid].train_loss for cid in completed]
        sizes = [state.results[cid].num_samples for cid in completed]
        record = RoundRecord(
            round_number=state.round_number,
            start_time=state.start_time,
            end_time=self.env.now,
            selected_clients=list(state.selected_clients),
            completed_clients=completed,
            dropped_clients=list(state.dropped_clients),
            num_offloads=state.num_offloads
            or sum(1 for r in state.results.values() if r.offloaded_to is not None),
            test_accuracy=test_accuracy,
            test_loss=test_loss,
            mean_train_loss=average_metric(losses, sizes),
        )
        self._record_network(record)
        self.result.add_round(record)
        self.result.setup_time = self.setup_time
        self._rounds_completed += 1
        self._round_state = None
        executor = getattr(self.cluster, "batched_executor", None)
        if executor is not None:
            executor.finish_round(state.round_number)
        if self.checkpoint_hook is not None:
            # Between rounds: no round state, no round timers, no training
            # requests in flight yet — the quietest point of the loop.
            self.checkpoint_hook()
        if not self.finished:
            self._start_round()

    #: Traffic counters every run has; per-round extras only carry the
    #: fault/transport counters beyond these.
    _BASE_NET_KEYS = ("messages_sent", "bytes_sent", "messages_dropped", "messages_failed")

    def _record_network(self, record: RoundRecord) -> None:
        """Refresh the result's network totals; attach per-round deltas.

        The whole-run totals are overwritten on every record so the result
        always reflects traffic up to its last round.  Per-round
        fault-counter deltas go into ``record.extra`` only when the
        transport machinery is live, keeping null-transport round records
        byte-identical to the historical ones.
        """
        totals = self.cluster.network_totals()
        self.result.network = dict(totals)
        if self._transport_active:
            for key, value in totals.items():
                if key in self._BASE_NET_KEYS:
                    continue
                record.extra[f"net_{key}"] = float(value) - self._net_baseline.get(key, 0.0)
            self._net_baseline = dict(totals)

    # ------------------------------------------------------ checkpoint seams
    def capture_checkpoint_state(self) -> Optional[dict]:
        """Serializable federator state at a round boundary, or ``None``.

        The synchronous engine only checkpoints between rounds, so a round
        in flight refuses capture (the checkpointer retries at the next
        boundary).  Subclasses contribute algorithm state through
        :meth:`_capture_extra_state`.
        """
        if self._round_state is not None:
            return None
        extra = self._capture_extra_state()
        if extra is None:
            return None
        return {
            "global_weights": {k: v.copy() for k, v in self.global_weights.items()},
            "rng": self._rng.bit_generator.state,
            "rounds_completed": self._rounds_completed,
            "round_pending": self._round_pending,
            "setup_time": self.setup_time,
            "net_baseline": dict(self._net_baseline),
            "extra": extra,
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`capture_checkpoint_state` onto a
        freshly built federator (before the simulation is resumed)."""
        self.global_weights = {
            k: np.array(v, copy=True) for k, v in state["global_weights"].items()
        }
        self.global_model.set_weights(self.global_weights)
        self._rng.bit_generator.state = state["rng"]
        self._rounds_completed = int(state["rounds_completed"])
        self._round_pending = bool(state["round_pending"])
        self.setup_time = state["setup_time"]
        self.result.setup_time = state["setup_time"]
        self._net_baseline = dict(state["net_baseline"])
        self._restore_extra_state(state["extra"])

    def _capture_extra_state(self) -> Optional[dict]:
        """Algorithm-specific mutable state (TiFL tier credits, async
        buffers, ...).  Return ``None`` to refuse the checkpoint."""
        return {}

    def _restore_extra_state(self, extra: dict) -> None:
        """Restore state captured by :meth:`_capture_extra_state`."""

    # Backwards-compatible alias (pre-refactor name).
    _finalize_round = finalize_round


@register_federator("fedavg")
class FedAvgFederator(BaseFederator):
    """Plain FedAvg: random selection, wait for everyone, weighted average."""

    algorithm_name = "fedavg"
