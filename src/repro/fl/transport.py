"""Reliable-delivery middleware over the simulated unreliable network.

The paper's testbed assumes asynchronous-but-reliable RPC.  PR 7 makes the
wire unreliable (:class:`repro.simulation.network.FaultProfile` can drop,
duplicate, reorder and corrupt messages) and adds this middleware layer to
win the reliability back, the way a real deployment's messaging stack
would:

* every application message carries a monotonically increasing ``msg_id``;
* the receiving channel acknowledges each delivery with a small ACK
  message routed over the same (lossy) links;
* the sender retransmits on ACK timeout with exponential backoff plus a
  seeded jitter, up to a bounded number of attempts;
* the receiver deduplicates by ``msg_id``, so retransmissions and
  fault-injected duplicates are *re-ACKed* but applied at most once;
* corrupted deliveries are discarded before they reach the application
  handler — only a retransmission can recover them;
* when attempts are exhausted the message *expires*: expiry listeners
  (the federators) get a chance to degrade gracefully — drop the client
  from the round, re-dispatch the task — instead of hanging forever.

Two implementations share the interface: :class:`DirectTransport` is the
historical pass-through (zero extra events, zero random draws — bitwise
identical to the pre-transport simulator and the default), and
:class:`ReliableTransport` implements the protocol above.  Both are owned
by the :class:`~repro.simulation.cluster.SimulatedCluster`, and all
federator/client traffic — including client↔client offloads — routes
through them.

Checkpointing: the reliable channel's mutable state (un-ACKed sends with
their retransmit timers, per-node dedup sets, the jitter rng and the
counters) is fully serializable.  Timers are captured as declarative
``(fire time, sequence)`` entries and replayed by the checkpoint
orchestrator in the globally merged event order, so a resumed run is
bitwise identical to an uninterrupted one even with retransmissions in
flight.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.fl.config import TransportConfig
from repro.simulation.events import SimulationEnvironment
from repro.simulation.network import Message, Network, payload_size_bytes

#: Reserved message kind for transport-level acknowledgements.  ACKs are
#: ordinary wire messages: they cross the same lossy links and are subject
#: to the same fault profile (a lost or corrupted ACK is repaired by the
#: sender's retransmission, which the receiver re-ACKs).
ACK_KIND = "__transport_ack__"

#: Wire size charged for one acknowledgement.
ACK_SIZE_BYTES = 64.0


class DirectTransport:
    """Pass-through transport: the historical fire-and-forget semantics.

    Registers application handlers directly with the network and forwards
    sends verbatim — no ids, no ACKs, no timers, no dedup, no random
    draws.  With a null fault profile this is bitwise identical to the
    pre-transport simulator.
    """

    reliable = False

    def __init__(self, network: Network) -> None:
        self._network = network

    def register(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        self._network.register(node_id, handler)

    def unregister(self, node_id: Any) -> None:
        self._network.unregister(node_id)

    def send(
        self,
        sender: Any,
        recipient: Any,
        kind: str,
        payload: Any = None,
        round_number: int = -1,
        size_bytes: Optional[float] = None,
    ) -> Message:
        return self._network.send(
            sender, recipient, kind, payload, round_number, size_bytes
        )

    # ------------------------------------------------- interface conformance
    def add_expiry_listener(self, callback: Callable[[dict], None]) -> None:
        """No-op: nothing ever expires on a fire-and-forget transport."""

    def pending_count(self) -> int:
        """Un-ACKed sends awaiting retransmission or expiry (always 0)."""
        return 0

    def pending_involving(self, node_id: Any, round_number: Optional[int] = None) -> int:
        return 0

    def counters(self) -> Dict[str, float]:
        return {}

    def capture_state(self) -> Optional[dict]:
        return None

    def restore_state(self, state: Optional[dict]) -> None:
        if state is not None:
            raise ValueError("DirectTransport cannot restore reliable-channel state")

    def schedule_restored(self, entry: dict) -> None:
        raise ValueError("DirectTransport has no retransmit timers to restore")


class ReliableTransport:
    """Reliable channels (ids + ACKs + retransmit + dedup) for every node.

    One instance serves the whole cluster: per-node state is keyed by node
    id, so it survives virtual-pool dehydration (a dehydrated client's
    dedup set stays here; its un-ACKed sends keep retransmitting from the
    captured payload without the actor).
    """

    reliable = True

    def __init__(
        self,
        network: Network,
        env: SimulationEnvironment,
        config: TransportConfig,
        seed: int = 0,
    ) -> None:
        self._network = network
        self._env = env
        self.config = config
        # Backoff jitter draws come from a private stream (distinct spawn
        # key) so the transport never perturbs model/selection randomness.
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(0x7BA9,))
        )
        self._handlers: Dict[Any, Callable[[Message], None]] = {}
        #: msg_id -> un-ACKed send (all fields plain data; the payload is
        #: held by reference until the ACK arrives or the entry expires).
        self._pending: Dict[int, Dict[str, Any]] = {}
        #: msg_id -> scheduled retransmit/expiry timer.  Invariant: same
        #: keys as ``_pending`` (both are updated together).
        self._timers: Dict[int, Any] = {}
        #: receiver node id -> msg_ids already delivered to its handler.
        self._seen: Dict[Any, set] = {}
        self._next_id = 0
        self._expiry_listeners: List[Callable[[dict], None]] = []
        # Counters (merged into run summaries and reports).
        self.retransmits = 0
        self.expired = 0
        self.dup_suppressed = 0
        self.corrupt_dropped = 0
        self.acks_sent = 0

    # ------------------------------------------------------------ registration
    def register(self, node_id: Any, handler: Callable[[Message], None]) -> None:
        """Register a node's application handler behind the channel wrapper."""
        self._handlers[node_id] = handler
        self._network.register(node_id, lambda message: self._dispatch(node_id, message))

    def unregister(self, node_id: Any) -> None:
        self._handlers.pop(node_id, None)
        self._network.unregister(node_id)

    def add_expiry_listener(self, callback: Callable[[dict], None]) -> None:
        """Call ``callback(entry)`` when a send exhausts its attempts.

        ``entry`` is the pending-send dict (sender, recipient, kind,
        round_number, attempts, ...).  Listeners are how the round engines
        degrade gracefully instead of waiting forever.
        """
        self._expiry_listeners.append(callback)

    # ------------------------------------------------------------------- send
    def send(
        self,
        sender: Any,
        recipient: Any,
        kind: str,
        payload: Any = None,
        round_number: int = -1,
        size_bytes: Optional[float] = None,
    ) -> Message:
        """Send with at-most-``max_attempts`` delivery and receive-side dedup."""
        size = size_bytes if size_bytes is not None else payload_size_bytes(payload)
        msg_id = self._next_id
        self._next_id += 1
        entry = {
            "msg_id": msg_id,
            "sender": sender,
            "recipient": recipient,
            "kind": kind,
            "payload": payload,
            "round_number": round_number,
            "size_bytes": size,
            "attempts": 0,
        }
        self._pending[msg_id] = entry
        return self._transmit(entry)

    def _transmit(self, entry: Dict[str, Any]) -> Message:
        entry["attempts"] += 1
        message = self._network.send(
            entry["sender"],
            entry["recipient"],
            entry["kind"],
            entry["payload"],
            entry["round_number"],
            size_bytes=entry["size_bytes"],
            msg_id=entry["msg_id"],
        )
        self._arm_timer(entry)
        return message

    def _arm_timer(self, entry: Dict[str, Any]) -> None:
        attempt = entry["attempts"]
        timeout = self.config.ack_timeout_s * self.config.backoff_factor ** (attempt - 1)
        timeout *= 1.0 + float(self._rng.uniform(0.0, self.config.backoff_jitter))
        msg_id = entry["msg_id"]
        self._timers[msg_id] = self._env.schedule(
            timeout, lambda: self._on_timeout(msg_id)
        )

    def _on_timeout(self, msg_id: int) -> None:
        self._timers.pop(msg_id, None)
        entry = self._pending.get(msg_id)
        if entry is None:
            return
        if entry["attempts"] >= self.config.max_attempts:
            del self._pending[msg_id]
            self.expired += 1
            for callback in self._expiry_listeners:
                callback(entry)
            return
        self.retransmits += 1
        self._transmit(entry)

    # ---------------------------------------------------------------- receive
    def _dispatch(self, node_id: Any, message: Message) -> None:
        if message.kind == ACK_KIND:
            acked = self._pending.pop(message.payload, None)
            timer = self._timers.pop(message.payload, None)
            if timer is not None:
                timer.cancel()
            del acked  # payload freed with the entry
            return
        if message.corrupted:
            # Poisoned on the wire: discard without ACKing, so the sender's
            # retransmission recovers it.
            self.corrupt_dropped += 1
            return
        if message.msg_id is not None:
            # ACK before the dedup check: a retransmission of an already
            # delivered message means the previous ACK was lost, and the
            # repair is to acknowledge again (idempotently).
            if self._network.has_handler(message.sender):
                self.acks_sent += 1
                self._network.send(
                    node_id,
                    message.sender,
                    ACK_KIND,
                    payload=message.msg_id,
                    size_bytes=ACK_SIZE_BYTES,
                )
            seen = self._seen.setdefault(node_id, set())
            if message.msg_id in seen:
                self.dup_suppressed += 1
                return
            seen.add(message.msg_id)
        handler = self._handlers.get(node_id)
        if handler is not None:
            handler(message)

    # ------------------------------------------------------------- inspection
    def pending_count(self) -> int:
        """Un-ACKed sends (each holds exactly one live retransmit timer)."""
        return len(self._pending)

    def pending_involving(self, node_id: Any, round_number: Optional[int] = None) -> int:
        """Un-ACKed sends touching a node (optionally only one round's)."""
        return sum(
            1
            for entry in self._pending.values()
            if (entry["sender"] == node_id or entry["recipient"] == node_id)
            and (round_number is None or entry["round_number"] == round_number)
        )

    def counters(self) -> Dict[str, float]:
        return {
            "retransmits": float(self.retransmits),
            "expired": float(self.expired),
            "dup_suppressed": float(self.dup_suppressed),
            "corrupt_dropped": float(self.corrupt_dropped),
            "acks_sent": float(self.acks_sent),
        }

    # ------------------------------------------------------ checkpoint seams
    def capture_state(self) -> dict:
        """Serializable snapshot of the channel state.

        Pending sends are captured with their timer's ``(fire time,
        sequence)`` so the checkpoint orchestrator can replay them (via
        :meth:`schedule_restored`) in the globally merged event order.
        """
        pending = []
        for msg_id, entry in self._pending.items():
            timer = self._timers[msg_id]
            pending.append(
                {**entry, "fire_at": timer.time, "sequence": timer.sequence}
            )
        pending.sort(key=lambda item: (item["fire_at"], item["sequence"]))
        return {
            "next_id": self._next_id,
            "rng": self._rng.bit_generator.state,
            "seen": {node: sorted(ids) for node, ids in self._seen.items()},
            "retransmits": self.retransmits,
            "expired": self.expired,
            "dup_suppressed": self.dup_suppressed,
            "corrupt_dropped": self.corrupt_dropped,
            "acks_sent": self.acks_sent,
            "pending": pending,
        }

    def restore_state(self, state: dict) -> None:
        """Restore everything except the timers (replayed separately)."""
        self._next_id = int(state["next_id"])
        self._rng.bit_generator.state = state["rng"]
        self._seen = {node: set(ids) for node, ids in state["seen"].items()}
        self.retransmits = int(state["retransmits"])
        self.expired = int(state["expired"])
        self.dup_suppressed = int(state["dup_suppressed"])
        self.corrupt_dropped = int(state["corrupt_dropped"])
        self.acks_sent = int(state["acks_sent"])
        self._pending.clear()
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def schedule_restored(self, entry: dict) -> None:
        """Re-create one captured pending send and its timer."""
        msg_id = int(entry["msg_id"])
        self._pending[msg_id] = {
            "msg_id": msg_id,
            "sender": entry["sender"],
            "recipient": entry["recipient"],
            "kind": entry["kind"],
            "payload": entry["payload"],
            "round_number": entry["round_number"],
            "size_bytes": entry["size_bytes"],
            "attempts": entry["attempts"],
        }
        self._timers[msg_id] = self._env.schedule_at(
            entry["fire_at"], lambda: self._on_timeout(msg_id)
        )


def build_transport(
    network: Network,
    env: SimulationEnvironment,
    config: TransportConfig,
    seed: int = 0,
):
    """The transport matching a :class:`TransportConfig` (direct or reliable)."""
    if config.reliable:
        return ReliableTransport(network, env, config, seed=seed)
    return DirectTransport(network)
