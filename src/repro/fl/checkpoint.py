"""Mid-run checkpointing: crash-safe, bitwise-identical resume.

A checkpoint is one pickled snapshot of *everything* that makes the
discrete-event simulation deterministic:

* the federator's aggregation state (global weights, rng stream, round
  counter, algorithm extras such as TiFL's tier credits or FedBuff's
  delta buffer),
* every client's execution state (loader position, lifetime counters,
  mid-round model/optimizer state and the pending batch completion),
  captured directly on the eager path or through the virtual pool,
* the cluster's mutable environment (offline set, speed fractions, link
  overrides, clock skews) and the scenario driver's declarative pending
  events plus its rng stream,
* every message in flight on the network, with its original delivery
  ``(time, sequence)``,
* the reliable transport's channel state (un-ACKed sends with their
  retransmit timers, dedup sets, jitter rng, counters) together with the
  network's traffic counters and the fault injector's rng/counters,
* the simulation clock and all round records emitted so far.

The resume path rebuilds the experiment from its configuration (all
construction-time state is seeded), overwrites the mutable state from the
snapshot, and re-schedules the captured events in merged ``(time,
sequence)`` order — newly created events then sort after every restored
one, exactly as they did in the uninterrupted run, so the continuation is
**bitwise identical**: same round records, same weights, same rng draws.

Capture points differ per engine:

* The synchronous engine offers the boundary *between* rounds (no round
  state, no timers, no training requests in flight yet); a resumed run
  re-enters ``_start_round`` (``bootstrap_round``).
* The asynchronous engines offer the end of every update application; the
  captured in-flight task set then re-drives the dispatch loop on its own.

A capture *refuses* (returns ``None``) whenever some component holds state
the snapshot cannot represent — a client mid-offload-training, a round in
flight, or any unaccounted event on the queue.  The
:class:`RunCheckpointer` simply retries at the next opportunity, so a
refused boundary costs nothing but checkpoint freshness.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import List, Optional, Tuple

#: Bump when the snapshot layout changes; stale checkpoints are ignored
#: (the run restarts from scratch rather than resuming wrongly).
#: 3: snapshots grew the ``"shard"`` section — the sharded executor's
#:    merged per-shard state (seed streams, cumulative counters, per-worker
#:    stats/RSS) — ``None`` for unsharded runs.
CHECKPOINT_FORMAT = 3


# --------------------------------------------------------------------- capture
def capture_snapshot(experiment) -> Optional[dict]:
    """Snapshot a running experiment, or ``None`` when it refuses capture.

    ``experiment`` is the :class:`repro.fl.runtime.ExperimentHandle` of the
    run in flight.  Refusal is normal operation (see module docstring).
    """
    federator = experiment.federator
    cluster = experiment.cluster
    env = cluster.env

    federator_state = federator.capture_checkpoint_state()
    if federator_state is None:
        return None

    pool_state = None
    client_states: Optional[List[Tuple[int, dict]]] = None
    if experiment.pool is not None:
        pool_state = experiment.pool.capture_state()
        if pool_state is None:
            return None
        live_states = pool_state["hydrated"]
    else:
        client_states = []
        for client in experiment.clients:
            state = client.capture_execution_state()
            if state is None:
                return None
            client_states.append((client.client_id, state))
        live_states = client_states

    dynamics_state = None
    dynamics_pending = 0
    if experiment.dynamics is not None:
        dynamics_state = experiment.dynamics.capture_state()
        dynamics_pending = experiment.dynamics.pending_count()

    messages = cluster.network.capture_in_flight()
    pending_batches = sum(
        1 for _cid, state in live_states if state["pending_batch"] is not None
    )
    transport_state = cluster.transport.capture_state()
    transport_timers = cluster.transport.pending_count()

    # Every pending event must be one we can re-create; anything else (a
    # round timer, a stale event from an untracked source) makes the cut
    # incomplete and the capture refuses.
    if env.pending_events() != (
        dynamics_pending + len(messages) + pending_batches + transport_timers
    ):
        return None

    # The sharded compute plane schedules no events and holds no round
    # state at a capture boundary (workers idle between rounds); its
    # contribution is the merged per-shard bookkeeping.
    executor = getattr(cluster, "batched_executor", None)
    shard_state = (
        executor.shard_snapshot() if hasattr(executor, "shard_snapshot") else None
    )

    return {
        "format": CHECKPOINT_FORMAT,
        "run_key": None,  # filled in by the writer
        "round": federator._rounds_completed,
        "now": env.now,
        "bootstrap_round": federator.checkpoint_bootstraps_round and not federator.finished,
        "records": list(federator.result.rounds),
        "federator": federator_state,
        "clients": client_states,
        "pool": pool_state,
        "cluster": cluster.capture_state(),
        "dynamics": dynamics_state,
        "messages": messages,
        "transport": transport_state,
        "shard": shard_state,
    }


# --------------------------------------------------------------------- restore
def restore_snapshot(experiment, snapshot: dict) -> None:
    """Restore a snapshot onto a freshly built (never started) experiment.

    After this returns, pumping the simulation continues the run exactly
    where the checkpoint was taken; the caller must *not* call
    ``federator.start()``.
    """
    federator = experiment.federator
    cluster = experiment.cluster
    env = cluster.env

    env.now = snapshot["now"]
    cluster.restore_state(snapshot["cluster"])

    # Clients before messages: hydration re-registers network handlers.
    if experiment.pool is not None:
        experiment.pool.restore_state(snapshot["pool"])
        live_states = snapshot["pool"]["hydrated"]
        resolve = experiment.pool.client
    else:
        by_id = {client.client_id: client for client in experiment.clients}
        for client_id, state in snapshot["clients"]:
            by_id[client_id].restore_execution_state(state)
        live_states = snapshot["clients"]
        resolve = by_id.get

    federator.restore_checkpoint_state(snapshot["federator"])
    federator.result.rounds.extend(snapshot["records"])

    executor = getattr(cluster, "batched_executor", None)
    if hasattr(executor, "restore_shard_snapshot"):
        executor.restore_shard_snapshot(snapshot.get("shard"))

    if experiment.dynamics is not None and snapshot["dynamics"] is not None:
        experiment.dynamics.restore_state(snapshot["dynamics"])

    # Channel state before the merged replay: the retransmit timers below
    # are re-armed one by one via schedule_restored.
    cluster.transport.restore_state(snapshot["transport"])

    # Re-schedule every captured event in globally merged (time, sequence)
    # order: re-pushing in that order reproduces the uninterrupted run's
    # tie-breaking, and everything scheduled afterwards sorts later — just
    # like events created after the capture point did originally.
    entries: List[Tuple[float, int, tuple]] = []
    if snapshot["dynamics"] is not None:
        for time, sequence, kind, args in snapshot["dynamics"]["pending"]:
            entries.append((time, sequence, ("dynamics", kind, args)))
    for message in snapshot["messages"]:
        entries.append((message["deliver_at"], message["sequence"], ("message", message)))
    if snapshot["transport"] is not None:
        for entry in snapshot["transport"]["pending"]:
            entries.append((entry["fire_at"], entry["sequence"], ("transport", entry)))
    for client_id, state in live_states:
        pending = state["pending_batch"]
        if pending is not None:
            time, sequence, loss = pending
            entries.append((time, sequence, ("batch", client_id, loss)))
    entries.sort(key=lambda entry: (entry[0], entry[1]))

    for _time, _sequence, action in entries:
        if action[0] == "dynamics":
            experiment.dynamics.schedule_restored(_time, action[1], action[2])
        elif action[0] == "message":
            cluster.network.restore_in_flight(action[1])
        elif action[0] == "transport":
            cluster.transport.schedule_restored(action[1])
        else:  # "batch"
            resolve(action[1]).schedule_restored_batch(_time, action[2])

    if snapshot["bootstrap_round"]:
        # The sync engine checkpoints before the next round starts; in the
        # uninterrupted run _start_round ran synchronously inside the
        # finalizing event, i.e. before any queued event — calling it here,
        # after the restored events claimed their sequence numbers, keeps
        # the event order identical.
        federator._start_round()


# ------------------------------------------------------------------- files
def write_checkpoint(path, snapshot: dict) -> None:
    """Atomically write a snapshot (write-to-temp + rename)."""
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path, run_key: Optional[str] = None) -> Optional[dict]:
    """Load a checkpoint, or ``None`` when missing, corrupt, or mismatched.

    A checkpoint written by a different snapshot format — or for a
    different run key, when one is given — is treated exactly like a
    missing one: the caller falls back to running from scratch.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            snapshot = pickle.load(handle)
    except Exception:
        return None
    if not isinstance(snapshot, dict) or snapshot.get("format") != CHECKPOINT_FORMAT:
        return None
    if run_key is not None and snapshot.get("run_key") != run_key:
        return None
    return snapshot


# ------------------------------------------------------------------- driver
class RunCheckpointer:
    """Drives periodic checkpoint capture for one running experiment.

    Installed onto the federator's ``checkpoint_hook``; every call is a
    cheap counter check until a checkpoint becomes *due* (``interval``
    completed rounds since the last write), after which each opportunity
    attempts a capture until one succeeds (skip-and-retry).
    """

    def __init__(self, experiment, interval: int, path, run_key: Optional[str] = None) -> None:
        if interval < 1:
            raise ValueError("checkpoint interval must be at least 1")
        self.experiment = experiment
        self.interval = int(interval)
        self.path = Path(path)
        self.run_key = run_key
        #: Round of the last written checkpoint; starts at the restored
        #: round on resume so the first new checkpoint lands one full
        #: interval later.
        self.last_round = experiment.federator._rounds_completed
        self.written = 0
        self.skipped = 0
        self._due = False

    def install(self) -> None:
        self.experiment.federator.checkpoint_hook = self.maybe_checkpoint

    def force(self) -> None:
        """Make the next capture opportunity write, whatever the interval.

        The graceful-drain path of ``repro serve`` uses this: on SIGTERM
        every in-flight run is asked to checkpoint at its next quiet point
        and stop, so a restarted server resumes it bitwise-identically.
        """
        self._due = True

    def maybe_checkpoint(self) -> None:
        federator = self.experiment.federator
        if federator.finished:
            return  # the finalized run supersedes any checkpoint
        completed = federator._rounds_completed
        if completed > self.last_round and completed % self.interval == 0:
            self._due = True
        if not self._due:
            return
        snapshot = capture_snapshot(self.experiment)
        if snapshot is None:
            self.skipped += 1
            return
        snapshot["run_key"] = self.run_key
        write_checkpoint(self.path, snapshot)
        self.last_round = completed
        self.written += 1
        self._due = False
