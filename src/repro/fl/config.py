"""Experiment configuration dataclasses.

A single :class:`ExperimentConfig` describes everything needed to run one
federated-learning experiment: the dataset and model, the client
population and its heterogeneity, the training hyper-parameters, and the
algorithm-specific knobs of the baselines and of Aergia.  The experiment
harness (:mod:`repro.experiments`) builds these configs for every figure
and table of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence


@dataclass
class ResourceConfig:
    """How client compute speeds are generated.

    Attributes
    ----------
    scheme:
        ``"uniform"`` (the paper's default: speeds uniform in
        [``low``, ``high``]), ``"variance"`` (controlled mean/variance,
        used by Figure 1(a)), ``"tiers"`` (discrete weak/medium/strong) or
        ``"explicit"`` (speeds given directly).
    """

    scheme: str = "uniform"
    low: float = 0.1
    high: float = 1.0
    mean: float = 0.5
    variance: float = 0.1
    tiers: Sequence[float] = (0.25, 0.5, 1.0)
    explicit_speeds: Optional[Sequence[float]] = None
    base_flops_per_second: float = 2.0e9

    def __post_init__(self) -> None:
        valid = {"uniform", "variance", "tiers", "explicit"}
        if self.scheme not in valid:
            raise ValueError(f"unknown resource scheme {self.scheme!r}; valid: {sorted(valid)}")
        if self.scheme == "explicit" and not self.explicit_speeds:
            raise ValueError("explicit resource scheme requires explicit_speeds")


@dataclass
class ExperimentConfig:
    """Full description of one federated-learning experiment.

    The defaults are scaled-down relative to the paper (smaller synthetic
    datasets, fewer local updates and rounds) so that a pure-numpy
    reproduction completes in seconds; the experiment harness documents the
    scaling in EXPERIMENTS.md.
    """

    # Workload
    dataset: str = "mnist"
    architecture: str = "mnist-cnn"
    train_size: int = 2400
    test_size: int = 600
    partition: str = "iid"
    classes_per_client: int = 3
    dirichlet_alpha: float = 0.5

    # Federation
    num_clients: int = 8
    clients_per_round: Optional[int] = None  # None -> all clients every round
    rounds: int = 5
    local_updates: int = 16
    profile_batches: int = 4
    batch_size: int = 32

    # Optimisation
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0

    # Algorithm-specific knobs
    algorithm: str = "fedavg"
    fedprox_mu: float = 0.05
    deadline_seconds: Optional[float] = None
    tifl_num_tiers: int = 3
    aergia_similarity_factor: float = 1.0

    # Heterogeneity
    resources: ResourceConfig = field(default_factory=ResourceConfig)
    network_latency_s: float = 0.01
    network_bandwidth_bytes_per_s: float = 125e6

    # Compute engine
    #: Numeric width of the numpy engine: "float32" (fast default),
    #: "float64" (bit-identical with the original engine), or None to use
    #: the process-wide default (REPRO_DTYPE env var, else float32).
    #: FLOP accounting and simulated times are identical across dtypes.
    dtype: Optional[str] = None

    # Reproducibility
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if self.clients_per_round is not None and not 1 <= self.clients_per_round <= self.num_clients:
            raise ValueError("clients_per_round must be in [1, num_clients]")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if self.local_updates < 1:
            raise ValueError("local_updates must be at least 1")
        if not 0 <= self.profile_batches <= self.local_updates:
            raise ValueError("profile_batches must be in [0, local_updates]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.partition not in {"iid", "noniid", "dirichlet"}:
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")
        if self.aergia_similarity_factor < 0:
            raise ValueError("aergia_similarity_factor must be non-negative")
        if self.dtype is not None and self.dtype not in {"float32", "float64"}:
            raise ValueError(
                f"unknown compute dtype {self.dtype!r}; valid: float32, float64 (or None)"
            )

    @property
    def effective_clients_per_round(self) -> int:
        """Number of clients selected in each round."""
        return self.clients_per_round if self.clients_per_round is not None else self.num_clients

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Short summary used by reports and experiment logs."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "architecture": self.architecture,
            "partition": self.partition,
            "num_clients": self.num_clients,
            "clients_per_round": self.effective_clients_per_round,
            "rounds": self.rounds,
            "local_updates": self.local_updates,
            "seed": self.seed,
            "dtype": self.dtype,
        }
