"""Experiment configuration dataclasses.

A single :class:`ExperimentConfig` describes everything needed to run one
federated-learning experiment: the dataset and model, the client
population and its heterogeneity, the training hyper-parameters, and the
algorithm-specific knobs of the baselines and of Aergia.  The experiment
harness (:mod:`repro.experiments`) builds these configs for every figure
and table of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence


@dataclass
class ResourceConfig:
    """How client compute speeds are generated.

    Attributes
    ----------
    scheme:
        ``"uniform"`` (the paper's default: speeds uniform in
        [``low``, ``high``]), ``"variance"`` (controlled mean/variance,
        used by Figure 1(a)), ``"tiers"`` (discrete weak/medium/strong) or
        ``"explicit"`` (speeds given directly).
    """

    scheme: str = "uniform"
    low: float = 0.1
    high: float = 1.0
    mean: float = 0.5
    variance: float = 0.1
    tiers: Sequence[float] = (0.25, 0.5, 1.0)
    explicit_speeds: Optional[Sequence[float]] = None
    base_flops_per_second: float = 2.0e9

    def __post_init__(self) -> None:
        valid = {"uniform", "variance", "tiers", "explicit"}
        if self.scheme not in valid:
            raise ValueError(f"unknown resource scheme {self.scheme!r}; valid: {sorted(valid)}")
        if self.scheme == "explicit" and not self.explicit_speeds:
            raise ValueError("explicit resource scheme requires explicit_speeds")


@dataclass
class DynamicsConfig:
    """Time-varying cluster behaviour driven by the scenario engine.

    All dynamics are *scheduled on the simulation's event queue* by
    :class:`repro.simulation.dynamics.ScenarioDynamics` and every random
    draw comes from a generator seeded by the experiment seed, so a given
    ``(config, seed)`` pair always produces the identical virtual-time
    trace — dynamic runs stay bit-for-bit reproducible across serial and
    parallel execution.

    The default instance is completely inert (:meth:`is_active` is
    ``False``): no events are scheduled and the simulation behaves exactly
    like the static, build-time-frozen cluster of the original code.

    Attributes
    ----------
    scenario:
        Human-readable label of the named scenario this config was built
        from (``"stable"``, ``"churn"``, ...).  Purely descriptive; the
        behaviour is fully determined by the fields below.
    churn:
        Enable per-client availability cycling: each client alternates
        between online windows (mean ``mean_online_s``) and offline windows
        (mean ``mean_offline_s``), both exponentially distributed.  A client
        that goes offline mid-round drops out of the round: its in-flight
        messages fail and the federator is notified.
    min_online_clients:
        Churn never takes a client offline if doing so would leave fewer
        than this many clients online.
    first_event_s:
        Quiet period before the first dynamics event of any kind.
    slowdown_rate_per_s:
        Poisson rate (events per virtual second, cluster-wide) of straggler
        slowdown bursts.  Each burst divides one random online client's
        ``speed_fraction`` by ``slowdown_factor`` for an exponentially
        distributed duration with mean ``mean_slowdown_s``.
    bandwidth_rate_per_s:
        Poisson rate of bandwidth-trace mutations.  Each mutation rescales
        one random client's up/down links to the federator by a factor
        drawn uniformly from [``bandwidth_low_factor``,
        ``bandwidth_high_factor``], reverting after an exponentially
        distributed hold time with mean ``mean_bandwidth_hold_s``.
    client_timeout_s:
        Per-client timeout used by the synchronous round engine: a selected
        client that has not delivered its update this many virtual seconds
        after the round started is dropped from the round.  ``None`` (the
        default) waits forever, which is the classic FedAvg behaviour.
    """

    scenario: str = "stable"

    # Availability / churn
    churn: bool = False
    mean_online_s: float = 30.0
    mean_offline_s: float = 5.0
    min_online_clients: int = 1
    first_event_s: float = 0.0

    # Straggler slowdown bursts
    slowdown_rate_per_s: float = 0.0
    slowdown_factor: float = 4.0
    mean_slowdown_s: float = 2.0

    # Bandwidth traces
    bandwidth_rate_per_s: float = 0.0
    bandwidth_low_factor: float = 0.1
    bandwidth_high_factor: float = 1.0
    mean_bandwidth_hold_s: float = 3.0

    # Loss bursts: a Poisson process picks a random client and raises the
    # drop rate of its links to the federator to ``loss_burst_drop_rate``
    # for an exponentially distributed hold (mean ``mean_loss_burst_s``).
    # Bursts are absolute overrides on the fault profile, so they bite even
    # when the transport's base drop_rate is zero.
    loss_burst_rate_per_s: float = 0.0
    loss_burst_drop_rate: float = 0.5
    mean_loss_burst_s: float = 3.0

    # Federation-layer tolerance
    client_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mean_online_s <= 0 or self.mean_offline_s <= 0:
            raise ValueError("churn online/offline window means must be positive")
        if self.min_online_clients < 0:
            raise ValueError("min_online_clients cannot be negative")
        if self.first_event_s < 0:
            raise ValueError("first_event_s cannot be negative")
        if self.slowdown_rate_per_s < 0:
            raise ValueError("slowdown_rate_per_s cannot be negative")
        if self.slowdown_factor < 1:
            raise ValueError("slowdown_factor must be >= 1")
        if self.mean_slowdown_s <= 0:
            raise ValueError("mean_slowdown_s must be positive")
        if self.bandwidth_rate_per_s < 0:
            raise ValueError("bandwidth_rate_per_s cannot be negative")
        if not 0 < self.bandwidth_low_factor <= self.bandwidth_high_factor:
            raise ValueError(
                "bandwidth factors must satisfy 0 < low <= high "
                f"(got [{self.bandwidth_low_factor}, {self.bandwidth_high_factor}])"
            )
        if self.mean_bandwidth_hold_s <= 0:
            raise ValueError("mean_bandwidth_hold_s must be positive")
        if self.loss_burst_rate_per_s < 0:
            raise ValueError("loss_burst_rate_per_s cannot be negative")
        if not 0 <= self.loss_burst_drop_rate <= 1:
            raise ValueError("loss_burst_drop_rate must be in [0, 1]")
        if self.mean_loss_burst_s <= 0:
            raise ValueError("mean_loss_burst_s must be positive")
        if self.client_timeout_s is not None and self.client_timeout_s <= 0:
            raise ValueError("client_timeout_s must be positive when set")

    def is_active(self) -> bool:
        """Whether any time-varying behaviour is enabled at all."""
        return bool(
            self.churn
            or self.slowdown_rate_per_s > 0
            or self.bandwidth_rate_per_s > 0
            or self.loss_burst_rate_per_s > 0
        )


@dataclass
class TransportConfig:
    """Message-level fault injection and the reliable-delivery middleware.

    The default instance is *null* (:meth:`is_null` is ``True``): no faults
    are injected, no acknowledgements or retransmit timers are scheduled,
    and the simulation is bitwise identical to the historical fail-stop
    network.  Like the inert :class:`DynamicsConfig`, a null transport is
    excluded from ``config_hash``/``run_key`` so existing result archives
    keep their keys.

    Attributes
    ----------
    drop_rate, duplicate_rate, corrupt_rate:
        Per-message probabilities that the fault injector silently drops a
        message, delivers it twice, or poisons its payload (a corrupted
        message is discarded by the receiving channel and never reaches the
        application handler — only a retransmission can recover it).
    reorder_rate, reorder_max_delay_s:
        Probability that a message is held back by an extra uniformly drawn
        delay in ``(0, reorder_max_delay_s]``, letting later sends overtake
        it.
    fault_kinds:
        Message kinds subject to fault injection; empty means *all* kinds.
        Transport acknowledgements are never faulted by kind filters but do
        share the link-level drop/duplicate decisions.
    reliable:
        Enable the :class:`repro.fl.transport.ReliableChannel` middleware:
        every data message carries an id, receivers acknowledge delivery,
        senders retransmit on ACK timeout with exponential backoff plus
        seeded jitter, and receivers deduplicate so retransmits and
        duplicates are applied at most once.
    ack_timeout_s:
        Initial ACK timeout before the first retransmission.
    max_attempts:
        Total send attempts (first transmission included) before the
        channel gives up and reports the message as expired.
    backoff_factor, backoff_jitter:
        The timeout of attempt *n* is ``ack_timeout_s * backoff_factor**n``
        stretched by a uniform jitter in ``[1, 1 + backoff_jitter]``.
    quorum_fraction:
        Synchronous rounds may finalize once this fraction of the selected
        clients has reported, when the remaining clients' requests have
        expired.  1.0 keeps the classic all-or-timeout behaviour.
    """

    # Fault injection
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_max_delay_s: float = 0.05
    corrupt_rate: float = 0.0
    fault_kinds: Sequence[str] = ()

    # Reliable delivery
    reliable: bool = False
    ack_timeout_s: float = 1.0
    max_attempts: int = 4
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.1
    quorum_fraction: float = 1.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1] (got {value})")
        if self.drop_rate >= 1.0 and self.reliable:
            raise ValueError("drop_rate must be < 1 with reliable delivery enabled")
        if self.reorder_max_delay_s <= 0:
            raise ValueError("reorder_max_delay_s must be positive")
        if self.ack_timeout_s <= 0:
            raise ValueError("ack_timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter cannot be negative")
        if not 0 < self.quorum_fraction <= 1:
            raise ValueError("quorum_fraction must be in (0, 1]")
        if self.corrupt_rate > 0 and not self.reliable:
            raise ValueError(
                "corrupt_rate requires reliable delivery (a corrupted message "
                "is only recoverable through retransmission)"
            )

    def injects_faults(self) -> bool:
        """Whether the injector can ever touch a message."""
        return bool(
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.reorder_rate > 0
            or self.corrupt_rate > 0
        )

    def is_null(self) -> bool:
        """Whether the transport layer is completely inert (pass-through)."""
        return not self.injects_faults() and not self.reliable


@dataclass
class ExperimentConfig:
    """Full description of one federated-learning experiment.

    The defaults are scaled-down relative to the paper (smaller synthetic
    datasets, fewer local updates and rounds) so that a pure-numpy
    reproduction completes in seconds; the experiment harness documents the
    scaling in EXPERIMENTS.md.
    """

    # Workload
    dataset: str = "mnist"
    architecture: str = "mnist-cnn"
    train_size: int = 2400
    test_size: int = 600
    partition: str = "iid"
    classes_per_client: int = 3
    dirichlet_alpha: float = 0.5

    # Federation
    num_clients: int = 8
    clients_per_round: Optional[int] = None  # None -> all clients every round
    rounds: int = 5
    local_updates: int = 16
    profile_batches: int = 4
    batch_size: int = 32

    # Optimisation
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0

    # Algorithm-specific knobs
    algorithm: str = "fedavg"
    fedprox_mu: float = 0.05
    deadline_seconds: Optional[float] = None
    tifl_num_tiers: int = 3
    aergia_similarity_factor: float = 1.0

    # Asynchronous federation (fedasync / fedbuff)
    #: Base mixing weight of FedAsync's staleness-weighted server update.
    fedasync_alpha: float = 0.6
    #: Exponent of the polynomial staleness discount (1 + s)^-power.
    fedasync_staleness_power: float = 0.5
    #: Updates FedBuff buffers per aggregation; None -> half the per-round
    #: client count (at least 1).
    fedbuff_buffer_size: Optional[int] = None
    #: Clients training concurrently under the async federators; None ->
    #: effective_clients_per_round.
    async_concurrency: Optional[int] = None

    # Heterogeneity
    resources: ResourceConfig = field(default_factory=ResourceConfig)
    network_latency_s: float = 0.01
    network_bandwidth_bytes_per_s: float = 125e6

    # Scenario dynamics (churn, dropouts, slowdown bursts, bandwidth traces).
    # The default is inert: the cluster is static for the whole run.
    dynamics: DynamicsConfig = field(default_factory=DynamicsConfig)

    # Unreliable transport: fault injection + reliable-delivery middleware.
    # The default is null (pass-through), bitwise identical to the
    # historical network, and excluded from config hashing while null.
    transport: TransportConfig = field(default_factory=TransportConfig)

    # Compute engine
    #: Numeric width of the numpy engine: "float32" (fast default),
    #: "float64" (bit-identical with the original engine), or None to use
    #: the process-wide default (REPRO_DTYPE env var, else float32).
    #: FLOP accounting and simulated times are identical across dtypes.
    dtype: Optional[str] = None

    # Client materialization
    #: How simulated clients are materialized: "eager" builds one fully-
    #: hydrated FLClient per cohort member at setup (the historical
    #: behaviour), "virtual" keeps the cohort as lightweight descriptors and
    #: hydrates clients only when a round selects them (memory tracks
    #: participants-per-round, not cohort size), "auto" picks virtual for
    #: cohorts larger than VIRTUAL_POOL_AUTO_THRESHOLD clients.  Both modes
    #: produce bit-for-bit identical results.
    client_pool: str = "auto"
    #: Hydrated-slot budget of the virtual pool's LRU arena; None sizes it
    #: from the per-round participant count (plus headroom for clients that
    #: are still finishing after being dropped from a round).
    pool_slots: Optional[int] = None

    #: Batched multi-client compute: "on" installs a BatchedClientExecutor
    #: that runs each synchronous round's lockstep-compatible clients as one
    #: ``(clients, params)`` kernel set, "off" keeps the per-client oracle
    #: path, "auto" enables batching for rounds of
    #: BATCHED_AUTO_MIN_CLIENTS+ participants.  Batched numerics are
    #: bitwise identical to the per-client path (pinned by tests), so —
    #: like ``client_pool`` — the field is an execution knob excluded from
    #: ``config_hash``/``run_key``.
    batched_execution: str = "auto"

    # Sharded multi-process simulation
    #: Number of worker processes the batched compute plane shards the
    #: cohort across.  ``1`` (the default) keeps everything in-process;
    #: ``N >= 2`` partitions the client population into N contiguous
    #: ownership ranges and dispatches each cohort's lanes to the owning
    #: shard workers.  Sharded execution is bitwise identical to the
    #: single-process path (pinned by tests), so — like ``client_pool``
    #: and ``batched_execution`` — the field is an execution knob excluded
    #: from ``config_hash``/``run_key`` (except under
    #: ``shard_aggregate="partial"``, which makes the shard topology
    #: results-relevant; see below).  Sharding requires batched execution
    #: and a synchronous federator; otherwise it is inert.
    shards: int = 1

    #: How the hierarchical aggregation tree reduces shard traffic:
    #: ``"exact"`` (default) concatenates the edge aggregators' blocks in
    #: shard order — bitwise identical to the flat single-process
    #: reduction because shard ownership is contiguous in client-id
    #: order — while ``"partial"`` has each edge reduce its own block to a
    #: per-shard partial average that the root merges by shard sample
    #: counts (mathematically equivalent, not bitwise; results then depend
    #: on the shard topology, so ``"partial"`` makes both this field and
    #: ``shards`` hash-relevant).
    shard_aggregate: str = "exact"

    # Checkpointing
    #: Write a resumable mid-run checkpoint into the run's store directory
    #: every this many completed (virtual) rounds; ``None`` disables
    #: checkpointing.  Purely an execution knob: a checkpointed run and a
    #: straight-through run produce bitwise-identical results, so the field
    #: is excluded from ``config_hash``/``run_key`` (like ``client_pool``).
    checkpoint_interval: Optional[int] = None

    # Reproducibility
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if self.clients_per_round is not None and not 1 <= self.clients_per_round <= self.num_clients:
            raise ValueError("clients_per_round must be in [1, num_clients]")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if self.local_updates < 1:
            raise ValueError("local_updates must be at least 1")
        if not 0 <= self.profile_batches <= self.local_updates:
            raise ValueError("profile_batches must be in [0, local_updates]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.partition not in {"iid", "noniid", "dirichlet"}:
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive when set")
        if self.aergia_similarity_factor < 0:
            raise ValueError("aergia_similarity_factor must be non-negative")
        if self.dtype is not None and self.dtype not in {"float32", "float64"}:
            raise ValueError(
                f"unknown compute dtype {self.dtype!r}; valid: float32, float64 (or None)"
            )
        if not 0 < self.fedasync_alpha <= 1:
            raise ValueError("fedasync_alpha must be in (0, 1]")
        if self.fedasync_staleness_power < 0:
            raise ValueError("fedasync_staleness_power cannot be negative")
        if self.fedbuff_buffer_size is not None and self.fedbuff_buffer_size < 1:
            raise ValueError("fedbuff_buffer_size must be at least 1 when set")
        if self.async_concurrency is not None and self.async_concurrency < 1:
            raise ValueError("async_concurrency must be at least 1 when set")
        if self.client_pool not in {"auto", "eager", "virtual"}:
            raise ValueError(
                f"unknown client_pool mode {self.client_pool!r}; valid: auto, eager, virtual"
            )
        if self.pool_slots is not None and self.pool_slots < 1:
            raise ValueError("pool_slots must be at least 1 when set")
        if self.batched_execution not in {"auto", "on", "off"}:
            raise ValueError(
                f"unknown batched_execution mode {self.batched_execution!r}; "
                "valid: auto, on, off"
            )
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.shard_aggregate not in {"exact", "partial"}:
            raise ValueError(
                f"unknown shard_aggregate mode {self.shard_aggregate!r}; "
                "valid: exact, partial"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be at least 1 when set")

    @property
    def effective_clients_per_round(self) -> int:
        """Number of clients selected in each round."""
        return self.clients_per_round if self.clients_per_round is not None else self.num_clients

    @property
    def effective_fedbuff_buffer_size(self) -> int:
        """FedBuff's aggregation buffer size (auto: half the round's clients)."""
        if self.fedbuff_buffer_size is not None:
            return self.fedbuff_buffer_size
        return max(1, self.effective_clients_per_round // 2)

    @property
    def effective_async_concurrency(self) -> int:
        """Clients kept training concurrently by the async federators."""
        if self.async_concurrency is not None:
            return self.async_concurrency
        return self.effective_clients_per_round

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Short summary used by reports and experiment logs."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "architecture": self.architecture,
            "partition": self.partition,
            "num_clients": self.num_clients,
            "clients_per_round": self.effective_clients_per_round,
            "rounds": self.rounds,
            "local_updates": self.local_updates,
            "seed": self.seed,
            "dtype": self.dtype,
            "scenario": self.dynamics.scenario,
            "client_pool": self.client_pool,
        }


# ---------------------------------------------------------------------------
# Round-tripping configs through JSON (RunStore manifests, the serve protocol)
# ---------------------------------------------------------------------------
def config_to_dict(config: ExperimentConfig) -> Dict[str, object]:
    """JSON-safe dict round-trippable through :func:`config_from_dict`."""
    import dataclasses

    return dataclasses.asdict(config)


def config_from_dict(payload: Dict[str, object]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its ``asdict`` form.

    This is how a restarted ``repro serve`` reconstructs in-flight runs
    from their :class:`repro.api.RunStore` manifests (``manifest["config"]``
    is exactly this shape), and how the wire protocol accepts full-config
    submissions.  Unknown keys raise ``TypeError`` like the dataclass
    constructor would, so a manifest from an incompatible version fails
    loudly instead of running a silently different experiment.
    """
    payload = dict(payload)
    payload["resources"] = ResourceConfig(**dict(payload.get("resources") or {}))
    payload["dynamics"] = DynamicsConfig(**dict(payload.get("dynamics") or {}))
    payload["transport"] = TransportConfig(**dict(payload.get("transport") or {}))
    return ExperimentConfig(**payload)
