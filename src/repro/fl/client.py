"""The federated-learning client actor.

A client owns a private slice of the training data, a local copy of the
model, a resource profile (its simulated CPU speed) and a local clock.  It
reacts to messages from the federator and from other clients:

* ``TRAIN_REQUEST`` — start local training for a round: run the online
  profiler over the first ``P`` batches (when the federator asked for
  reports), report the measurements, and keep training;
* ``OFFLOAD_INSTRUCTION`` — freeze the feature layers at the next batch
  boundary once only the offloaded updates remain, ship the model to the
  designated strong client, and continue training the classifier only;
* ``OFFLOAD_EXPECT`` — reserve capacity for an incoming offloaded model by
  giving up the corresponding number of own local updates (the scheduler's
  estimate in Algorithm 2 assumes exactly this);
* ``OFFLOADED_MODEL`` — after finishing its own updates, train the frozen
  feature layers of the received model on the *local* dataset and return
  them to the federator.

Every batch is a real numpy gradient step; its *duration* is charged to
virtual time through the cluster's cost model, which is how the
reproduction recreates heterogeneous training speeds.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.freezing import FrozenModelPackage, split_weights
from repro.core.profiler import OnlineProfiler
from repro.data.loader import BatchLoader
from repro.fl.config import ExperimentConfig
from repro.fl.messages import MessageKind, OffloadResult, ProfileReport, TrainingResult
from repro.nn.model import Phase, SplitCNN
from repro.nn.optim import Optimizer, ProximalSGD, SGD
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster
from repro.simulation.network import Message, weights_wire_bytes


class FLClient:
    """A simulated federated-learning client node."""

    def __init__(
        self,
        client_id: int,
        cluster: SimulatedCluster,
        model: SplitCNN,
        x_train: np.ndarray,
        y_train: np.ndarray,
        config: ExperimentConfig,
        class_counts: Optional[np.ndarray] = None,
    ) -> None:
        self.client_id = client_id
        self.config = config
        self.cluster = cluster
        self.env = cluster.env
        self.network = cluster.network
        self.transport = cluster.transport
        self.cost_model = cluster.cost_model
        self.resource = cluster.profile(client_id)
        self.clock = cluster.nodes[client_id].clock

        self.model = model
        self.loader = BatchLoader(
            x_train, y_train, batch_size=config.batch_size, seed=config.seed * 10_007 + client_id
        )
        self.class_counts = class_counts
        self.optimizer: Optimizer = self._build_optimizer()

        self.transport.register(client_id, self.handle_message)
        cluster.attach_actor(client_id, self)

        #: Batched execution: the cluster-wide cohort executor (when the
        #: config enables it) and this client's live lane handle.  While a
        #: lane is held, batches are computed by the executor's lockstep
        #: waves instead of ``model.train_batch``; timing, events and
        #: losses are identical either way (see :mod:`repro.nn.batched`).
        self._batched = getattr(cluster, "batched_executor", None)
        self._lane = None

        # Round state (reset at every TRAIN_REQUEST).
        self._round: Optional[int] = None
        self._total_batches = 0
        self._give_up_batches = 0
        self._profile_batches = 0
        self._report_profile = False
        self._batches_done = 0
        self._losses: List[float] = []
        self._profiler = OnlineProfiler()
        self._profile_sent = False
        self._offload_target: Optional[int] = None
        self._offload_budget = 0
        self._has_offloaded = False
        self._own_training_done = False
        self._result_sent = False
        self._incoming_package: Optional[FrozenModelPackage] = None
        self._offload_model: Optional[SplitCNN] = None
        self._offload_batches_done = 0
        self._offload_training_active = False
        #: An OFFLOAD_EXPECT promised this client an incoming model that has
        #: not arrived yet (``_offload_source`` is the promising weak
        #: client).  Cleared when the model lands, when a new round starts,
        #: or on disconnect (the expectation is void either way).
        self._offload_expected = False
        self._offload_source: Optional[int] = None
        #: Pending batch-completion events, kept so that a disconnect (or a
        #: new round arriving while a stale batch is still in flight) can
        #: cancel them instead of letting them corrupt later rounds.
        self._pending_batch_event = None
        self._pending_offload_event = None
        #: The already-computed loss the pending batch event will report;
        #: kept as plain data (not only inside the event's closure) so a
        #: checkpoint can serialize and re-schedule the completion exactly.
        self._pending_batch_loss: Optional[float] = None

        # Lifetime statistics (used by tests and reports).
        self.rounds_participated = 0
        self.total_batches_trained = 0
        self.total_offloads_sent = 0
        self.total_offloads_trained = 0
        self.times_disconnected = 0

    # ------------------------------------------------------------------ setup
    def _build_optimizer(self) -> Optimizer:
        if self.config.algorithm == "fedprox":
            return ProximalSGD(
                lr=self.config.learning_rate,
                mu=self.config.fedprox_mu,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )
        return SGD(
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )

    @property
    def num_samples(self) -> int:
        """Size of the client's local training set."""
        return self.loader.num_samples

    # --------------------------------------------------------------- messaging
    def handle_message(self, message: Message) -> None:
        """Entry point for all messages delivered by the network."""
        if message.kind == MessageKind.TRAIN_REQUEST:
            self._start_round(message)
        elif message.kind == MessageKind.OFFLOAD_INSTRUCTION:
            self._handle_offload_instruction(message)
        elif message.kind == MessageKind.OFFLOAD_EXPECT:
            self._handle_offload_expect(message)
        elif message.kind == MessageKind.OFFLOADED_MODEL:
            self._handle_offloaded_model(message)
        # Unknown kinds are ignored: the paper's clients drop messages they
        # do not understand or that belong to past rounds.

    def _stale(self, message: Message) -> bool:
        """Whether a control message belongs to a round other than the current one."""
        return self._round is None or message.round_number != self._round

    # ------------------------------------------------------------- lifecycle
    def on_disconnect(self) -> None:
        """Called by the cluster when this client goes offline.

        All local work is aborted: pending batch completions are cancelled
        and the round state is cleared, so nothing from the interrupted
        round can leak into a later one.  The model itself keeps its weights
        (a rejoining client is handed fresh global weights with the next
        training request anyway).
        """
        self.times_disconnected += 1
        self._abandon_lane()
        self._cancel_pending_work()
        self._round = None
        self._own_training_done = False
        self._result_sent = False
        self._incoming_package = None
        self._offload_training_active = False
        self._offload_target = None
        self._has_offloaded = False
        self._offload_expected = False
        self._offload_source = None

    def on_reconnect(self) -> None:
        """Called by the cluster when this client comes back online."""
        # Nothing to do: the client idles until the next TRAIN_REQUEST.

    # --------------------------------------------------- pool (de)hydration
    #: Attribute names that survive dehydration.  Only the batch loader's
    #: position affects numerics (model weights and optimizer state are
    #: overwritten at every TRAIN_REQUEST); the counters are lifetime
    #: diagnostics that reports and tests read.
    PERSISTENT_COUNTERS = (
        "rounds_participated",
        "total_batches_trained",
        "total_offloads_sent",
        "total_offloads_trained",
        "times_disconnected",
    )

    def is_quiescent(self, resolve_peer=None) -> bool:
        """Whether the client has no scheduled work or held offload state.

        Only quiescent clients may be dehydrated: a pending batch event, a
        buffered offloaded model, or a promised-but-undelivered offload
        would be lost otherwise (in-flight network messages are checked
        separately by the pool).  ``resolve_peer`` (id -> client or None)
        lets the pool refine the offload-expectation check — see
        :meth:`_offload_expectation_live`; without it an unfulfilled
        expectation conservatively blocks.
        """
        return (
            self._pending_batch_event is None
            and self._pending_offload_event is None
            and self._incoming_package is None
            and not self._offload_training_active
            and not self._offload_expectation_live(resolve_peer)
        )

    def _offload_expectation_live(self, resolve_peer=None) -> bool:
        """Whether a promised offloaded model can still arrive.

        The promise dies with the weak client's round: once the source has
        finished its own training without offloading (or already shipped
        the model — then the in-flight/package checks take over), was
        dehydrated (only possible once itself quiescent), or disconnected,
        nothing can send anymore and the expectation stops blocking
        eviction.  Without ``resolve_peer`` the answer is conservative.
        """
        if not self._offload_expected:
            return False
        if resolve_peer is None or self._offload_source is None:
            return True
        source = resolve_peer(self._offload_source)
        if source is None:
            return False  # dehydrated (hence quiescent) or unknown: void
        return (
            source._round == self._round
            and not source._own_training_done
            and not source._has_offloaded
        )

    def dehydrate(self) -> dict:
        """Capture the state that must survive eviction from the pool.

        The caller guarantees :meth:`is_quiescent`; everything else the
        client owns (model buffers, optimizer scratch, data slices) is
        reconstructed — or recycled from the pool's arena — on rehydration.
        """
        # A held lane implies a pending batch event, which is_quiescent
        # rejects; this is a backstop against future lifecycle changes.
        assert self._lane is None, "cannot dehydrate a client holding a batched lane"
        state = {name: getattr(self, name) for name in self.PERSISTENT_COUNTERS}
        state["loader"] = self.loader.state()
        return state

    def rehydrate(self, state: dict) -> None:
        """Restore state captured by :meth:`dehydrate` on a fresh instance."""
        for name in self.PERSISTENT_COUNTERS:
            setattr(self, name, state[name])
        self.loader.set_state(state["loader"])

    def _cancel_pending_work(self) -> None:
        """Cancel any scheduled batch-completion events."""
        if self._pending_batch_event is not None:
            self._pending_batch_event.cancel()
            self._pending_batch_event = None
            self._pending_batch_loss = None
        if self._pending_offload_event is not None:
            self._pending_offload_event.cancel()
            self._pending_offload_event = None

    # ----------------------------------------------------- checkpoint seams
    def capture_execution_state(self) -> Optional[dict]:
        """Full mid-run state for a checkpoint, or ``None`` when the client
        is in a state the checkpointer does not serialize.

        This extends :meth:`dehydrate` (loader position + lifetime counters)
        with the in-flight training task: model weights, optimizer momentum,
        round progress, profiler accumulators, and the already-computed
        pending batch completion.  Mid-offload-training states are refused —
        offloading happens only inside a synchronous round, and the
        synchronous engine checkpoints at round boundaries where it is never
        active.  *Residual* round flags (frozen features, a stale offload
        expectation, a profiler that never hit its stop condition) can
        outlive the round until the next ``TRAIN_REQUEST`` resets them; they
        are captured as plain data so pool-eviction decisions after a resume
        match the uninterrupted run exactly.
        """
        if (
            self._incoming_package is not None
            or self._offload_training_active
            or self._pending_offload_event is not None
        ):
            return None
        # A mid-flight straggler may still hold a batched lane: materialize
        # it into the per-client buffers so the snapshot (weights, momentum,
        # loader, pending loss) is exactly what an unbatched run would hold.
        # The resumed run continues on the per-client path, which is bitwise
        # identical.
        self._leave_lane()
        state = self.dehydrate()
        mid_round = self._round is not None
        state.update(
            round=self._round,
            total_batches=self._total_batches,
            batches_done=self._batches_done,
            losses=list(self._losses),
            own_training_done=self._own_training_done,
            result_sent=self._result_sent,
            give_up_batches=self._give_up_batches,
            profile_batches=self._profile_batches,
            report_profile=self._report_profile,
            profile_sent=self._profile_sent,
            profiler=self._profiler.capture_state(),
            offload_target=self._offload_target,
            offload_budget=self._offload_budget,
            has_offloaded=self._has_offloaded,
            offload_expected=self._offload_expected,
            offload_source=self._offload_source,
            features_frozen=self.model.features_frozen,
            weights=self.model.get_weights() if mid_round else None,
            optimizer=self.optimizer.capture_state() if mid_round else None,
            pending_batch=(
                (
                    self._pending_batch_event.time,
                    self._pending_batch_event.sequence,
                    self._pending_batch_loss,
                )
                if self._pending_batch_event is not None
                and not self._pending_batch_event.cancelled
                else None
            ),
        )
        return state

    def restore_execution_state(self, state: dict) -> None:
        """Restore a snapshot from :meth:`capture_execution_state`.

        The pending batch event (if any) is *not* re-scheduled here: the
        checkpoint orchestrator replays all captured events in globally
        merged (time, sequence) order via :meth:`schedule_restored_batch`.
        """
        self.rehydrate({key: state[key] for key in (*self.PERSISTENT_COUNTERS, "loader")})
        self._cancel_pending_work()
        self._round = state["round"]
        self._total_batches = int(state["total_batches"])
        self._batches_done = int(state["batches_done"])
        self._losses = list(state["losses"])
        self._own_training_done = bool(state["own_training_done"])
        self._result_sent = bool(state["result_sent"])
        self._give_up_batches = int(state["give_up_batches"])
        self._profile_batches = int(state["profile_batches"])
        self._report_profile = bool(state["report_profile"])
        self._profile_sent = bool(state["profile_sent"])
        self._profiler.restore_state(state["profiler"])
        self._offload_target = state["offload_target"]
        self._offload_budget = int(state["offload_budget"])
        self._has_offloaded = bool(state["has_offloaded"])
        self._incoming_package = None
        self._offload_batches_done = 0
        self._offload_training_active = False
        self._offload_expected = bool(state["offload_expected"])
        self._offload_source = state["offload_source"]
        if state["weights"] is not None:
            self.model.unfreeze_features()
            self.model.unfreeze_classifier()
            self.model.set_weights(state["weights"])
            self.optimizer.restore_state(state["optimizer"])
            if state["features_frozen"]:
                self.model.freeze_features()

    def schedule_restored_batch(self, time: float, loss: float) -> None:
        """Re-schedule a captured pending batch completion at its absolute
        fire time (called by the checkpoint orchestrator in event order)."""
        self._pending_batch_loss = loss
        self._pending_batch_event = self.env.schedule_at(
            time, lambda: self._on_own_batch_done(loss)
        )

    # ------------------------------------------------------------ round start
    def _start_round(self, message: Message) -> None:
        payload = message.payload
        # A new round supersedes whatever this client was doing: if it was
        # still training for an expired round (e.g. it was dropped by a
        # deadline or timeout), the stale batch completion must not fire
        # into the new round's accounting.  A stale batched lane only needs
        # its loader draws replayed (the weights are overwritten below);
        # this must happen before the pending event is cancelled because
        # the draw count includes the in-flight batch.
        self._abandon_lane()
        self._cancel_pending_work()
        self._round = message.round_number
        self._total_batches = int(payload["total_batches"])
        self._profile_batches = int(payload.get("profile_batches", 0))
        self._report_profile = bool(payload.get("report_profile", False))
        self._give_up_batches = 0
        self._batches_done = 0
        self._losses = []
        self._profiler.reset()
        if self._profile_batches == 0:
            self._profiler.stop()
        self._profile_sent = False
        self._offload_target = None
        self._offload_budget = 0
        self._has_offloaded = False
        self._own_training_done = False
        self._result_sent = False
        self._incoming_package = None
        self._offload_batches_done = 0
        self._offload_training_active = False
        self._offload_expected = False
        self._offload_source = None

        self.model.unfreeze_features()
        self.model.unfreeze_classifier()
        self.model.set_weights(payload["weights"])
        self.optimizer.reset_state()
        if isinstance(self.optimizer, ProximalSGD):
            # Anchor the proximal term on the just-loaded global weights,
            # held as one contiguous vector per section so the proximal
            # gradient is a fused vector operation (set_anchor copies).
            self.optimizer.set_anchor(
                {
                    section: self.model.flat_parameters(section)
                    for section in self.model.SECTIONS
                }
            )

        if self._batched is not None:
            # Claim the lane the executor planned for this round (None when
            # ineligible, already claimed, or the cohort has started — the
            # per-client path below handles every such case identically).
            self._lane = self._batched.activate(self, self._round)

        self.rounds_participated += 1
        self._train_own_batch()

    # ---------------------------------------------------------- local training
    def _effective_total_batches(self) -> int:
        """Own updates to perform, after giving up capacity for offloaded work."""
        return max(self._total_batches - self._give_up_batches, self._batches_done)

    def _train_own_batch(self) -> None:
        if self._lane is not None:
            self._schedule_batched_batch()
            return
        xb, yb = self.loader.next_batch()
        loss, trace = self.model.train_batch(xb, yb, self.optimizer)
        phase_durations = self.cost_model.phase_seconds(trace, self.resource, self.env.now)
        if self.model.features_frozen:
            duration = self.cost_model.frozen_batch_seconds(trace, self.resource, self.env.now)
        else:
            duration = self.cost_model.batch_seconds(trace, self.resource, self.env.now)
        if self._profiler.active:
            measured = {
                phase: self.clock.measure(seconds) for phase, seconds in phase_durations.items()
            }
            duration += self._profiler.record_batch(measured)
        self._pending_batch_loss = loss
        self._pending_batch_event = self.env.schedule(
            duration, lambda: self._on_own_batch_done(loss)
        )

    def _on_own_batch_done(self, loss: float) -> None:
        self._pending_batch_event = None
        self._pending_batch_loss = None
        self._batches_done += 1
        self.total_batches_trained += 1
        self._losses.append(loss)

        if (
            self._profiler.active
            and self._profiler.batches_recorded >= self._profile_batches
        ):
            self._profiler.stop()
            if self._report_profile and not self._profile_sent:
                self._send_profile_report()

        self._maybe_freeze_and_offload()

        if self._batches_done < self._effective_total_batches():
            self._train_own_batch()
        else:
            self._finish_own_training()

    # ------------------------------------------------------ batched execution
    def _schedule_batched_batch(self) -> None:
        """Schedule a batch completion without computing the batch yet.

        The duration comes from the lane's analytic phase trace, which is
        bitwise identical to the trace ``model.train_batch`` would record,
        so virtual timing (and the profiler's measurements) are unchanged.
        The numeric work happens lazily in the cohort's lockstep wave when
        the completion fires (or earlier, driven by a cohort peer).
        """
        trace = self._lane.trace()
        phase_durations = self.cost_model.phase_seconds(trace, self.resource, self.env.now)
        # A lane is only held while the features are unfrozen (freezing
        # materializes the lane first), so this is always the full duration.
        duration = self.cost_model.batch_seconds(trace, self.resource, self.env.now)
        if self._profiler.active:
            measured = {
                phase: self.clock.measure(seconds) for phase, seconds in phase_durations.items()
            }
            duration += self._profiler.record_batch(measured)
        self._pending_batch_loss = None
        self._pending_batch_event = self.env.schedule(duration, self._on_batched_batch_done)

    def _on_batched_batch_done(self) -> None:
        """Completion handler for a batch scheduled on a batched lane."""
        if self._lane is not None:
            loss = self._lane.consume_loss()
        else:
            # The lane was materialized while this completion was in flight
            # (e.g. checkpoint capture): the already-computed loss was
            # parked exactly as the per-client path does.
            loss = self._pending_batch_loss
        self._on_own_batch_done(loss)

    def _leave_lane(self) -> None:
        """Materialize the lane's state back into the per-client buffers.

        After this the client's model weights, optimizer state and loader
        position are bitwise what an unbatched run would hold after the
        same number of drawn batches (including a still-in-flight one).
        """
        lane = self._lane
        if lane is None:
            return
        self._lane = None
        pending = self._pending_batch_event is not None
        drawn = self._batches_done + (1 if pending else 0)
        last_loss = lane.materialize(self, drawn)
        if pending:
            self._pending_batch_loss = last_loss

    def _abandon_lane(self) -> None:
        """Leave the lane syncing only the loader (weights are obsolete)."""
        lane = self._lane
        if lane is None:
            return
        self._lane = None
        drawn = self._batches_done + (1 if self._pending_batch_event is not None else 0)
        lane.abandon(self, drawn)

    def _send_profile_report(self) -> None:
        profile = self._profiler.profile()
        report = ProfileReport(
            client_id=self.client_id,
            round_number=self._round if self._round is not None else -1,
            phase_seconds=dict(profile.phase_seconds),
            batches_measured=profile.batches_measured,
            batches_completed=self._batches_done,
            remaining_batches=max(self._total_batches - self._batches_done, 0),
        )
        self._profile_sent = True
        self.transport.send(
            self.client_id,
            FEDERATOR_ID,
            MessageKind.PROFILE_REPORT,
            payload=report,
            round_number=report.round_number,
        )

    # -------------------------------------------------------------- offloading
    def _handle_offload_instruction(self, message: Message) -> None:
        if self._stale(message):
            return
        payload = message.payload
        self._offload_target = int(payload["target"])
        self._offload_budget = int(payload["offload_batches"])
        # The instruction may arrive while the client is between batches (its
        # next completion event is already scheduled); freezing happens at the
        # next batch boundary via _maybe_freeze_and_offload.  If the client
        # already finished its own training, offloading no longer helps and
        # the instruction is ignored.
        if not self._own_training_done:
            self._maybe_freeze_and_offload()

    def _handle_offload_expect(self, message: Message) -> None:
        if self._stale(message):
            return
        self._give_up_batches = int(message.payload["offload_batches"])
        self._offload_expected = True
        source = message.payload.get("source")
        self._offload_source = int(source) if source is not None else None

    def _maybe_freeze_and_offload(self) -> None:
        if (
            self._offload_target is None
            or self._has_offloaded
            or self._own_training_done
            or self._offload_budget <= 0
        ):
            return
        remaining = self._total_batches - self._batches_done
        if remaining <= 0 or remaining > self._offload_budget:
            return
        # Freezing diverges this client from its lockstep cohort, so pull
        # the lane's state back into the per-client model first.
        self._leave_lane()
        # Freeze the feature layers and ship the model to the strong client
        # as one flat vector snapshot (no per-key dictionaries are built).
        package = FrozenModelPackage.from_model(
            self.model,
            source_client_id=self.client_id,
            round_number=self._round if self._round is not None else -1,
            batches_to_train=remaining,
        )
        self.transport.send(
            self.client_id,
            self._offload_target,
            MessageKind.OFFLOADED_MODEL,
            payload=package,
            round_number=package.round_number,
            size_bytes=package.payload_bytes(),
        )
        self.model.freeze_features()
        self._has_offloaded = True
        self.total_offloads_sent += 1

    def _handle_offloaded_model(self, message: Message) -> None:
        if self._stale(message):
            return
        self._offload_expected = False
        self._offload_source = None
        self._incoming_package = message.payload
        if self._own_training_done and not self._offload_training_active:
            self._start_offloaded_training()

    # --------------------------------------------------------------- completion
    def _finish_own_training(self) -> None:
        if self._own_training_done:
            return
        self._leave_lane()
        self._own_training_done = True
        result = TrainingResult(
            client_id=self.client_id,
            round_number=self._round if self._round is not None else -1,
            weights=self.model.get_weights(),
            flat_weights=self.model.get_flat_weights(),
            num_samples=self.num_samples,
            num_steps=self._batches_done,
            train_loss=float(np.mean(self._losses)) if self._losses else 0.0,
            features_frozen=self.model.features_frozen,
            offloaded_to=self._offload_target if self._has_offloaded else None,
            finished_at=self.env.now,
        )
        self._result_sent = True
        self.transport.send(
            self.client_id,
            FEDERATOR_ID,
            MessageKind.TRAIN_RESULT,
            payload=result,
            round_number=result.round_number,
            size_bytes=weights_wire_bytes(result.weights),
        )
        if self._incoming_package is not None and not self._offload_training_active:
            self._start_offloaded_training()

    # ------------------------------------------------- offloaded model training
    def _start_offloaded_training(self) -> None:
        package = self._incoming_package
        if package is None:
            return
        self._offload_training_active = True
        self._offload_batches_done = 0
        if self._offload_model is None:
            self._offload_model = self.model.clone_architecture()
        package.load_into(self._offload_model)
        self._offload_model.unfreeze_features()
        self._offload_model.freeze_classifier()
        self._offload_optimizer = SGD(
            lr=self.config.learning_rate,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        self._train_offloaded_batch()

    def _train_offloaded_batch(self) -> None:
        package = self._incoming_package
        model = self._offload_model
        if package is None or model is None:  # pragma: no cover - defensive
            return
        xb, yb = self.loader.next_batch()
        _, trace = model.train_batch(xb, yb, self._offload_optimizer)
        duration = self.cost_model.feature_training_seconds(trace, self.resource, self.env.now)
        self._pending_offload_event = self.env.schedule(duration, self._on_offloaded_batch_done)

    def _on_offloaded_batch_done(self) -> None:
        self._pending_offload_event = None
        package = self._incoming_package
        if package is None:  # pragma: no cover - defensive
            return
        self._offload_batches_done += 1
        if self._offload_batches_done < package.batches_to_train:
            self._train_offloaded_batch()
        else:
            self._finish_offloaded_training()

    def _finish_offloaded_training(self) -> None:
        package = self._incoming_package
        model = self._offload_model
        if package is None or model is None:  # pragma: no cover - defensive
            return
        feature_weights, _ = split_weights(model.get_weights())
        result = OffloadResult(
            source_client_id=package.source_client_id,
            trainer_client_id=self.client_id,
            round_number=package.round_number,
            feature_weights=feature_weights,
            batches_trained=self._offload_batches_done,
            finished_at=self.env.now,
        )
        self.total_offloads_trained += 1
        self._offload_training_active = False
        self._incoming_package = None
        self.transport.send(
            self.client_id,
            FEDERATOR_ID,
            MessageKind.OFFLOAD_RESULT,
            payload=result,
            round_number=result.round_number,
            size_bytes=weights_wire_bytes(feature_weights),
        )
