"""Round records and experiment results.

The paper reports, per algorithm and dataset, (i) the test accuracy after a
fixed number of communication rounds, (ii) the wall-clock (here: virtual)
time to complete those rounds, and (iii) distributions of per-round
durations (Figure 8) and accuracy-over-time curves (Figure 10).  The data
structures in this module capture everything those reports need.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

logger = logging.getLogger(__name__)


@dataclass
class RoundRecord:
    """Measurements of one global training round."""

    round_number: int
    start_time: float
    end_time: float
    selected_clients: List[int]
    completed_clients: List[int]
    dropped_clients: List[int] = field(default_factory=list)
    num_offloads: int = 0
    test_accuracy: float = 0.0
    test_loss: float = 0.0
    mean_train_loss: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Virtual duration of the round in seconds."""
        return self.end_time - self.start_time


@dataclass
class ExperimentResult:
    """The outcome of a complete federated-learning experiment."""

    algorithm: str
    dataset: str
    config: Dict[str, object]
    rounds: List[RoundRecord] = field(default_factory=list)
    setup_time: float = 0.0
    #: Whole-run network/transport counters (messages_sent, bytes_sent,
    #: fault-injection and retransmission totals).  Filled by the federator
    #: when the run ends; merged into :meth:`summary` so reports show them.
    network: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Round listeners are runtime observers, not part of the result's
        # value: kept off the dataclass fields so serialization, equality
        # and ``dataclasses.asdict`` are unaffected.
        self._round_listeners: List[Callable[[RoundRecord], None]] = []

    # ------------------------------------------------------------- recording
    def add_round_listener(self, listener: Callable[[RoundRecord], None]) -> None:
        """Call ``listener(record)`` whenever a round is recorded.

        This is the streaming seam of :mod:`repro.api`: every federator
        (synchronous or asynchronous) records finalized rounds through
        :meth:`add_round`, so a listener observes them the moment they
        exist — while the simulation is still running.
        """
        self._round_listeners.append(listener)

    def add_round(self, record: RoundRecord) -> None:
        self.rounds.append(record)
        # A failing listener (e.g. a streaming client that disconnected
        # mid-run) must not kill the federator round loop or starve the
        # listeners after it: log, detach the offender, continue.
        for listener in list(self._round_listeners):
            try:
                listener(record)
            except Exception:
                logger.exception(
                    "round listener %r raised; detaching it from the stream", listener
                )
                try:
                    self._round_listeners.remove(listener)
                except ValueError:
                    pass

    # ------------------------------------------------------------- summaries
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_time(self) -> float:
        """Total training time: setup (e.g. offline profiling) + all rounds."""
        if not self.rounds:
            return self.setup_time
        return self.setup_time + self.rounds[-1].end_time - self.rounds[0].start_time

    @property
    def final_accuracy(self) -> float:
        """Test accuracy after the last round."""
        if not self.rounds:
            return 0.0
        return self.rounds[-1].test_accuracy

    @property
    def peak_accuracy(self) -> float:
        """Best test accuracy observed over the run."""
        if not self.rounds:
            return 0.0
        return max(record.test_accuracy for record in self.rounds)

    def round_durations(self) -> np.ndarray:
        """Durations of every round (Figure 8 uses their distribution)."""
        return np.array([record.duration for record in self.rounds], dtype=np.float64)

    def mean_round_duration(self) -> float:
        durations = self.round_durations()
        return float(durations.mean()) if durations.size else 0.0

    def accuracy_timeline(self) -> List[Tuple[float, float]]:
        """(virtual time, accuracy) pairs, one per round (Figure 10 curves)."""
        return [
            (self.setup_time + record.end_time, record.test_accuracy) for record in self.rounds
        ]

    def total_offloads(self) -> int:
        return sum(record.num_offloads for record in self.rounds)

    def total_dropped(self) -> int:
        return sum(len(record.dropped_clients) for record in self.rounds)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the report printers and benchmarks."""
        summary = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "rounds": float(self.num_rounds),
            "total_time_s": float(self.total_time),
            "mean_round_duration_s": self.mean_round_duration(),
            "final_accuracy": float(self.final_accuracy),
            "peak_accuracy": float(self.peak_accuracy),
            "total_offloads": float(self.total_offloads()),
            "total_dropped": float(self.total_dropped()),
        }
        for key in sorted(self.network):
            summary[f"net_{key}"] = float(self.network[key])
        return summary


def round_duration_density(
    results: Sequence[ExperimentResult], bins: int = 20, max_duration: Optional[float] = None
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Histogram densities of round durations for several experiments.

    Returns a mapping ``algorithm -> (bin_centers, density)`` comparable to
    the kernel-density plot of Figure 8.
    """
    if not results:
        raise ValueError("need at least one experiment result")
    if max_duration is None:
        max_duration = max(
            (result.round_durations().max() if result.num_rounds else 0.0) for result in results
        )
        if max_duration <= 0:
            max_duration = 1.0
    edges = np.linspace(0.0, max_duration * 1.05, bins + 1)
    centers = (edges[:-1] + edges[1:]) / 2.0
    densities: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for result in results:
        durations = result.round_durations()
        hist, _ = np.histogram(durations, bins=edges, density=True)
        densities[result.algorithm] = (centers, hist)
    return densities
