"""Federated-learning runtime built on the cluster simulator.

This package provides the generic federated-learning machinery shared by
Aergia and all baselines:

* :mod:`repro.fl.config` — experiment configuration dataclasses,
* :mod:`repro.fl.messages` — message kinds exchanged between nodes,
* :mod:`repro.fl.metrics` — round records and experiment results,
* :mod:`repro.fl.aggregation` — FedAvg and FedNova aggregation rules,
* :mod:`repro.fl.selection` — client-selection policies,
* :mod:`repro.fl.client` — the client actor (local training, profiling,
  freezing and offloading mechanics),
* :mod:`repro.fl.federator` — the synchronous federator base class,
* :mod:`repro.fl.runtime` — glue that builds a cluster, partitions data,
  instantiates clients and a federator, and runs an experiment end to end.
"""

from repro.fl.config import ExperimentConfig, ResourceConfig
from repro.fl.messages import MessageKind, ProfileReport, TrainingResult
from repro.fl.metrics import RoundRecord, ExperimentResult
from repro.fl.aggregation import fedavg_aggregate, fednova_aggregate, weighted_average
from repro.fl.selection import select_random, select_all
from repro.fl.client import FLClient
from repro.fl.federator import BaseFederator, FedAvgFederator
from repro.fl.runtime import build_experiment, run_experiment

__all__ = [
    "ExperimentConfig",
    "ResourceConfig",
    "MessageKind",
    "ProfileReport",
    "TrainingResult",
    "RoundRecord",
    "ExperimentResult",
    "fedavg_aggregate",
    "fednova_aggregate",
    "weighted_average",
    "select_random",
    "select_all",
    "FLClient",
    "BaseFederator",
    "FedAvgFederator",
    "build_experiment",
    "run_experiment",
]
