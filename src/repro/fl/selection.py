"""Client-selection policies.

The paper performs client selection "in the same manner as with FedAvg"
(§4.3): a subset of the clients is selected uniformly at random each round
(all clients when the subset size equals the population).  TiFL replaces
this with tier-based selection, implemented in
:mod:`repro.baselines.tifl`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


def select_all(client_ids: Sequence[int]) -> List[int]:
    """Select every client (the default when ``clients_per_round`` is unset)."""
    return sorted(client_ids)


def select_random(
    client_ids: Sequence[int],
    num_to_select: int,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Uniformly random selection without replacement (FedAvg-style)."""
    if num_to_select < 1:
        raise ValueError("must select at least one client")
    if num_to_select > len(client_ids):
        raise ValueError(
            f"cannot select {num_to_select} clients out of {len(client_ids)}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    chosen = rng.choice(np.asarray(list(client_ids)), size=num_to_select, replace=False)
    return sorted(int(c) for c in chosen)


def select_weighted(
    client_ids: Sequence[int],
    weights: Sequence[float],
    num_to_select: int,
    rng: Optional[np.random.Generator] = None,
) -> List[int]:
    """Random selection with per-client probabilities (used by extensions)."""
    if len(client_ids) != len(weights):
        raise ValueError("client_ids and weights must have the same length")
    if num_to_select > len(client_ids):
        raise ValueError("cannot select more clients than available")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative and sum to a positive value")
    probabilities = weights / weights.sum()
    rng = rng if rng is not None else np.random.default_rng()
    chosen = rng.choice(
        np.asarray(list(client_ids)), size=num_to_select, replace=False, p=probabilities
    )
    return sorted(int(c) for c in chosen)
