"""The Aergia federator: freeze/offload orchestration (§3 and §4 of the paper).

Aergia keeps FedAvg's client selection and aggregation but adds, inside
every round:

1. **Online profiling** — selected clients measure their four training
   phases over the first ``P`` batches and report the timings.
2. **Centralized scheduling** — once all reports are in, the federator runs
   Algorithm 1 (with Algorithm 2 as the pair-wise cost estimator) to match
   stragglers with strong clients, refining the matching with the dataset
   similarity matrix that the SGX enclave computed before training started.
3. **Model freezing and offloading** — stragglers freeze their feature
   layers, ship their model to the matched strong client and keep training
   only their classifier; strong clients train the offloaded feature layers
   on their own data after finishing their own updates.
4. **Recombination** — at aggregation time the federator reassembles each
   offloaded model from the strong client's feature layers and the weak
   client's classifier layers, then applies the usual FedAvg average.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.enclave import SGXEnclave
from repro.core.freezing import recombine_offloaded_model
from repro.core.offloading import OffloadPlan
from repro.core.scheduler import ClientPerformance, schedule_offloading
from repro.core.similarity import ClientSimilarity
from repro.fl.config import ExperimentConfig
from repro.fl.federator import BaseFederator, RoundState
from repro.fl.messages import MessageKind, ProfileReport
from repro.nn.model import SplitCNN
from repro.registry import register_federator
from repro.simulation.cluster import FEDERATOR_ID, SimulatedCluster

Weights = Dict[str, np.ndarray]


@register_federator("aergia")
class AergiaFederator(BaseFederator):
    """Federator implementing the Aergia middleware."""

    algorithm_name = "aergia"

    def __init__(
        self,
        cluster: SimulatedCluster,
        config: ExperimentConfig,
        global_model: SplitCNN,
        x_test: np.ndarray,
        y_test: np.ndarray,
        enclave: Optional[SGXEnclave] = None,
        similarity: Optional[ClientSimilarity] = None,
        client_ids: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(cluster, config, global_model, x_test, y_test, client_ids=client_ids)
        self.similarity_factor = config.aergia_similarity_factor
        self._similarity: Optional[ClientSimilarity] = similarity
        if self._similarity is None and enclave is not None:
            # The enclave releases only the aggregate similarity matrix; the
            # raw client class distributions never reach this (untrusted)
            # federator code.
            self._similarity = enclave.similarity_matrix()
        #: Offloading plans per round, kept for analysis and tests.
        self.plans: Dict[int, OffloadPlan] = {}

    # ----------------------------------------------------------------- hooks
    def wants_profile_reports(self) -> bool:
        return True

    def on_profile_report(self, state: RoundState, report: ProfileReport) -> None:
        """Compute and distribute the offloading schedule once all reports arrived."""
        self._maybe_schedule_plan(state)

    def on_client_dropped(self, state: RoundState, client_id: int) -> None:
        # A dropout can complete the report set of the remaining clients.
        self._maybe_schedule_plan(state)

    def _maybe_schedule_plan(self, state: RoundState) -> None:
        if state.round_number in self.plans:
            return  # schedule already computed for this round (even if it
            # contained zero offloads: scheduling happens once per round)
        # Under churn, dropped clients will never report: the schedule is
        # computed from the clients still expected to contribute.
        if not set(state.expected_clients) <= set(state.profile_reports):
            return
        plan = self._compute_plan(state)
        self.plans[state.round_number] = plan
        state.num_offloads = plan.num_offloads
        self._send_plan(state, plan)

    def _compute_plan(self, state: RoundState) -> OffloadPlan:
        performances: List[ClientPerformance] = []
        for client_id in state.selected_clients:
            if client_id in state.dropped_clients or client_id not in state.profile_reports:
                continue  # dropped, or dropped before reporting
            report = state.profile_reports[client_id]
            performances.append(
                ClientPerformance(
                    client_id=client_id,
                    head_seconds=report.head_seconds,
                    tail_seconds=report.tail_seconds,
                    feature_training_seconds=report.feature_training_seconds,
                    remaining_batches=report.remaining_batches,
                )
            )
        similarity_matrix = None
        similarity_ids: Optional[List[int]] = None
        if self._similarity is not None and self.similarity_factor > 0:
            selected = [p.client_id for p in performances]
            restricted = self._similarity.submatrix(selected)
            similarity_matrix = restricted.matrix
            similarity_ids = list(restricted.client_ids)
        decision = schedule_offloading(
            performances,
            similarity=similarity_matrix,
            similarity_client_ids=similarity_ids,
            similarity_factor=self.similarity_factor,
            round_number=state.round_number,
        )
        return decision.plan

    def _send_plan(self, state: RoundState, plan: OffloadPlan) -> None:
        """Send freeze/offload instructions to weak clients and notices to strong ones.

        The paper signs these messages and tags them with the round number so
        stale instructions are ignored; the reproduction relies on the round
        number (authenticity is trivially satisfied inside the simulator).
        """
        for assignment in plan:
            self.transport.send(
                FEDERATOR_ID,
                assignment.weak_client,
                MessageKind.OFFLOAD_INSTRUCTION,
                payload={
                    "target": assignment.strong_client,
                    "offload_batches": assignment.offload_batches,
                },
                round_number=state.round_number,
            )
            self.transport.send(
                FEDERATOR_ID,
                assignment.strong_client,
                MessageKind.OFFLOAD_EXPECT,
                payload={
                    "source": assignment.weak_client,
                    "offload_batches": assignment.offload_batches,
                },
                round_number=state.round_number,
            )

    # ------------------------------------------------------------ aggregation
    def collect_contributions(self, state: RoundState) -> List[Tuple[Weights, int, int]]:
        contributions: List[Tuple[Weights, int, int]] = []
        for client_id in sorted(state.results):
            if client_id in state.dropped_clients:
                continue
            result = state.results[client_id]
            weights = result.weights
            if result.offloaded_to is not None:
                offload = state.offload_results.get(client_id)
                if offload is not None:
                    weights = recombine_offloaded_model(result.weights, offload.feature_weights)
            contributions.append((weights, result.num_samples, result.num_steps))
        return contributions

    # ------------------------------------------------------------- diagnostics
    def total_offloads(self) -> int:
        """Total number of freeze/offload pairs scheduled so far."""
        return sum(plan.num_offloads for plan in self.plans.values())
