"""Offloading plan data structures.

The scheduler (Algorithm 1) produces an :class:`OffloadPlan`: a set of
:class:`OffloadAssignment` objects, one per weak client, naming the strong
client that will train its frozen feature layers and the number of batch
updates to offload.  The Aergia federator turns the plan into
``OFFLOAD_INSTRUCTION`` / ``OFFLOAD_EXPECT`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class OffloadAssignment:
    """One weak-to-strong offloading decision.

    Attributes
    ----------
    weak_client:
        The straggler that freezes and offloads its model.
    strong_client:
        The faster client that trains the frozen feature layers.
    offload_batches:
        Number of local batch updates whose feature training is offloaded
        (``op``/``d`` in Algorithm 2).
    estimated_duration:
        The estimated completion time (``ct``) of the pair under this
        assignment, as computed by Algorithm 2.
    cost:
        The similarity-weighted cost used to pick the assignment (line 24
        of Algorithm 1).
    """

    weak_client: int
    strong_client: int
    offload_batches: int
    estimated_duration: float
    cost: float

    def __post_init__(self) -> None:
        if self.weak_client == self.strong_client:
            raise ValueError("a client cannot offload to itself")
        if self.offload_batches < 0:
            raise ValueError("offload_batches cannot be negative")
        if self.estimated_duration < 0 or self.cost < 0:
            raise ValueError("durations and costs cannot be negative")


@dataclass
class OffloadPlan:
    """The complete offloading schedule for one round."""

    round_number: int
    mean_compute_time: float
    assignments: List[OffloadAssignment] = field(default_factory=list)
    senders: List[int] = field(default_factory=list)
    receivers: List[int] = field(default_factory=list)

    def add(self, assignment: OffloadAssignment) -> None:
        if self.assignment_for(assignment.weak_client) is not None:
            raise ValueError(f"client {assignment.weak_client} already has an assignment")
        if any(a.strong_client == assignment.strong_client for a in self.assignments):
            raise ValueError(
                f"strong client {assignment.strong_client} is already used in this round"
            )
        self.assignments.append(assignment)

    def assignment_for(self, weak_client: int) -> Optional[OffloadAssignment]:
        """The assignment in which ``weak_client`` offloads, if any."""
        for assignment in self.assignments:
            if assignment.weak_client == weak_client:
                return assignment
        return None

    def assignment_received_by(self, strong_client: int) -> Optional[OffloadAssignment]:
        """The assignment in which ``strong_client`` receives work, if any."""
        for assignment in self.assignments:
            if assignment.strong_client == strong_client:
                return assignment
        return None

    def offloading_clients(self) -> List[int]:
        return [assignment.weak_client for assignment in self.assignments]

    def receiving_clients(self) -> List[int]:
        return [assignment.strong_client for assignment in self.assignments]

    @property
    def num_offloads(self) -> int:
        return len(self.assignments)

    def __iter__(self) -> Iterator[OffloadAssignment]:
        return iter(self.assignments)

    def as_dict(self) -> Dict[int, int]:
        """Mapping weak client -> strong client (handy for logging/tests)."""
        return {a.weak_client: a.strong_client for a in self.assignments}
