"""Online profiler measuring the four training phases (§4.2 of the paper).

At the beginning of every Aergia round the selected clients run complete
batches (all four phases) and measure, with their local clock, how long
each phase takes.  After ``P`` batches (the paper uses 100 out of 1600)
they report the measurements to the federator and keep training while
waiting for scheduling instructions.  The profiler has a very small
overhead (the paper reports 0.22–0.58 % of training time); the reproduction
charges that overhead explicitly through
:attr:`OnlineProfiler.overhead_fraction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.nn.model import Phase, PhaseTrace, SplitCNN


@dataclass
class PhaseProfile:
    """Aggregated per-phase timings measured by the online profiler."""

    phase_seconds: Dict[Phase, float]
    batches_measured: int

    @property
    def batch_seconds(self) -> float:
        """Mean duration of one full training batch."""
        return float(sum(self.phase_seconds.values()))

    def fractions(self) -> Dict[Phase, float]:
        """Share of a batch spent in each phase (the Figure 4 quantities)."""
        total = self.batch_seconds
        if total <= 0:
            return {phase: 0.0 for phase in Phase}
        return {phase: self.phase_seconds[phase] / total for phase in Phase}

    def dominant_phase(self) -> Phase:
        """The phase with the largest share (``bf`` for CNNs, per Figure 4)."""
        return max(Phase, key=lambda phase: self.phase_seconds[phase])


class OnlineProfiler:
    """Accumulates per-phase durations over the profiling batches of a round.

    Parameters
    ----------
    overhead_fraction:
        Fraction of the measured batch time added as profiling overhead.
        The paper measures an overhead of roughly 0.2–0.6 %; the default of
        0.005 sits at the top of that range so the reproduction never
        underestimates the cost of profiling.
    """

    def __init__(self, overhead_fraction: float = 0.005) -> None:
        if overhead_fraction < 0 or overhead_fraction > 0.05:
            raise ValueError("overhead_fraction must be a small non-negative value")
        self.overhead_fraction = overhead_fraction
        self._totals: Dict[Phase, float] = {phase: 0.0 for phase in Phase}
        self._batches = 0
        self._active = True

    # ------------------------------------------------------------------ state
    @property
    def batches_recorded(self) -> int:
        return self._batches

    @property
    def active(self) -> bool:
        """Whether the profiler is still collecting measurements."""
        return self._active

    def stop(self) -> None:
        """Stop collecting (the client does this after ``P`` batches)."""
        self._active = False

    def reset(self) -> None:
        """Clear accumulated measurements and resume collection."""
        self._totals = {phase: 0.0 for phase in Phase}
        self._batches = 0
        self._active = True

    # ------------------------------------------------------- checkpoint seams
    def capture_state(self) -> Dict:
        return {
            "totals": {phase.value: total for phase, total in self._totals.items()},
            "batches": self._batches,
            "active": self._active,
        }

    def restore_state(self, state: Dict) -> None:
        self._totals = {phase: 0.0 for phase in Phase}
        for name, total in state["totals"].items():
            self._totals[Phase(name)] = float(total)
        self._batches = int(state["batches"])
        self._active = bool(state["active"])

    # --------------------------------------------------------------- recording
    def record_batch(self, phase_durations: Dict[Phase, float]) -> float:
        """Record the measured durations of one batch.

        Returns the profiling overhead (in seconds) charged for this batch,
        which the caller adds to the client's virtual time.
        """
        if not self._active:
            return 0.0
        for phase in Phase:
            duration = float(phase_durations.get(phase, 0.0))
            if duration < 0:
                raise ValueError("phase durations cannot be negative")
            self._totals[phase] += duration
        self._batches += 1
        return self.overhead_fraction * float(sum(phase_durations.values()))

    def profile(self) -> PhaseProfile:
        """The mean per-phase durations observed so far."""
        if self._batches == 0:
            raise RuntimeError("no batches recorded yet")
        return PhaseProfile(
            phase_seconds={phase: self._totals[phase] / self._batches for phase in Phase},
            batches_measured=self._batches,
        )


def profile_model_phases(
    model: SplitCNN,
    x: np.ndarray,
    y: np.ndarray,
    batches: int = 5,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> PhaseProfile:
    """Profile a model's phase costs on a dataset (single-client scenario).

    This is the measurement behind Figure 4: run ``batches`` training
    batches and report the mean cost of each phase.  Costs are expressed in
    FLOP-seconds on a unit-speed client, which gives exactly the same
    *fractions* as wall-clock measurements on any fixed-speed machine.
    """
    if batches < 1:
        raise ValueError("need at least one batch to profile")
    if x.shape[0] < batch_size:
        batch_size = x.shape[0]
    rng = rng if rng is not None else np.random.default_rng(0)
    profiler = OnlineProfiler()
    saved = model.get_weights()
    for _ in range(batches):
        idx = rng.choice(x.shape[0], size=batch_size, replace=False)
        _, trace = model.train_batch(x[idx], y[idx], optimizer=None)
        profiler.record_batch({phase: trace.flops[phase] for phase in Phase})
    model.set_weights(saved)
    return profiler.profile()


def merge_traces_to_durations(trace: PhaseTrace, rate: float) -> Dict[Phase, float]:
    """Convert a FLOP trace into per-phase durations at a given compute rate."""
    if rate <= 0:
        raise ValueError("compute rate must be positive")
    return {phase: trace.flops[phase] / rate for phase in Phase}
