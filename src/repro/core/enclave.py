"""Simulated Intel SGX enclave hosting the similarity computation (§3.1, §4.4).

In the paper, clients send their *encrypted* class distributions to an SGX
enclave hosted by the federator; the enclave is remotely attested by the
clients, decrypts the distributions inside the trusted boundary, computes
the pair-wise EMD similarity matrix, and only the matrix leaves the
enclave.  The federator never observes a client's raw class distribution.

This module simulates that trusted execution environment:

* :meth:`SGXEnclave.attest` produces an :class:`AttestationReport` with the
  enclave's *measurement* (a hash of its code identity) and a public
  session key; clients verify the measurement against the expected value
  before trusting the enclave.
* Clients seal their class distribution with
  :func:`seal_distribution`, a keyed stream cipher (XOR with a
  key-derived pseudo-random stream).  This is *not* cryptographically
  strong — it stands in for the real attested TLS channel — but it enforces
  the same information-flow boundary inside the reproduction: untrusted
  code holding only the sealed blob cannot read the distribution without
  the enclave's session key.
* :meth:`SGXEnclave.submit_distribution` decrypts inside the enclave;
  :meth:`SGXEnclave.similarity_matrix` releases only the aggregate matrix.
  Any attempt to read raw distributions from outside raises
  :class:`EnclaveError`.

The substitution (simulated enclave instead of Graphene-SGX) is documented
in DESIGN.md §1.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.similarity import ClientSimilarity, compute_similarity_matrix


#: The "measurement" (MRENCLAVE analogue) of the genuine similarity enclave.
EXPECTED_MEASUREMENT = hashlib.sha256(b"aergia-similarity-enclave-v1").hexdigest()


class EnclaveError(RuntimeError):
    """Raised when untrusted code violates the enclave's interface."""


@dataclass(frozen=True)
class AttestationReport:
    """The evidence a client checks before trusting the enclave."""

    measurement: str
    session_key: bytes

    def verify(self, expected_measurement: str = EXPECTED_MEASUREMENT) -> bool:
        """Whether the report matches the expected enclave identity."""
        return self.measurement == expected_measurement


@dataclass(frozen=True)
class SealedDistribution:
    """An encrypted class-distribution vector in transit to the enclave."""

    client_id: int
    ciphertext: bytes
    num_classes: int


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic pseudo-random keystream derived from key and nonce."""
    stream = b""
    counter = 0
    while len(stream) < length:
        stream += hashlib.sha256(key + nonce + counter.to_bytes(4, "big")).digest()
        counter += 1
    return stream[:length]


def seal_distribution(
    client_id: int, class_counts: np.ndarray, report: AttestationReport
) -> SealedDistribution:
    """Encrypt a class-count vector for the attested enclave.

    Clients call this after verifying the attestation report; the federator
    only ever sees the resulting ciphertext.
    """
    if not report.verify():
        raise EnclaveError("refusing to seal data for an unverified enclave")
    counts = np.asarray(class_counts, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError("class_counts must be a one-dimensional vector")
    if np.any(counts < 0):
        raise ValueError("class counts cannot be negative")
    plaintext = counts.tobytes()
    nonce = client_id.to_bytes(8, "big", signed=True)
    stream = _keystream(report.session_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    return SealedDistribution(
        client_id=client_id, ciphertext=ciphertext, num_classes=int(counts.shape[0])
    )


class SGXEnclave:
    """The federator-hosted trusted execution environment.

    Only two things ever leave the enclave: attestation reports and the
    similarity matrix.  The raw per-client distributions stay inside.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self._session_key = bytes(int(b) for b in rng.integers(0, 256, size=32))
        self._measurement = EXPECTED_MEASUREMENT
        self._distributions: Dict[int, np.ndarray] = {}
        self._matrix: Optional[ClientSimilarity] = None

    # ------------------------------------------------------------ attestation
    def attest(self) -> AttestationReport:
        """Produce the remote-attestation report clients verify."""
        return AttestationReport(measurement=self._measurement, session_key=self._session_key)

    # ------------------------------------------------------------- submission
    def submit_distribution(self, sealed: SealedDistribution) -> None:
        """Accept an encrypted class distribution from a client."""
        nonce = sealed.client_id.to_bytes(8, "big", signed=True)
        stream = _keystream(self._session_key, nonce, len(sealed.ciphertext))
        plaintext = bytes(c ^ s for c, s in zip(sealed.ciphertext, stream))
        if len(plaintext) % np.dtype(np.int64).itemsize != 0:
            raise EnclaveError(
                "sealed distribution failed integrity checks (truncated ciphertext)"
            )
        counts = np.frombuffer(plaintext, dtype=np.int64)
        if counts.shape[0] != sealed.num_classes:
            raise EnclaveError(
                "sealed distribution failed integrity checks (wrong length after decryption)"
            )
        if np.any(counts < 0):
            raise EnclaveError("sealed distribution failed integrity checks (negative counts)")
        self._distributions[sealed.client_id] = counts.copy()
        self._matrix = None  # invalidate the cached matrix

    @property
    def num_submissions(self) -> int:
        """How many clients have submitted their distribution."""
        return len(self._distributions)

    # ----------------------------------------------------------- computation
    def similarity_matrix(self) -> ClientSimilarity:
        """Compute (or return the cached) pair-wise similarity matrix.

        This is the only data product released to the untrusted federator.
        """
        if not self._distributions:
            raise EnclaveError("no client distributions have been submitted")
        if self._matrix is None:
            self._matrix = compute_similarity_matrix(self._distributions)
        return self._matrix

    # ------------------------------------------------------------ information flow
    def __getattr__(self, name: str):
        # Note: __getattr__ is only called for attributes that are *not*
        # found through normal lookup, so internal methods keep working; this
        # guard documents and enforces the trusted boundary for typical
        # accidental accesses from federator code.
        if name in {"distributions", "raw_distributions", "class_counts"}:
            raise EnclaveError(
                "client class distributions never leave the enclave; "
                "use similarity_matrix() instead"
            )
        raise AttributeError(name)
