"""Dataset-similarity computation used by the Aergia scheduler (§4.4).

The similarity between two clients is the Earth Mover's Distance between
their class distributions (lower = more similar).  The actual numerical
work lives in :mod:`repro.data.distribution`; this module adds the
client-id bookkeeping the federator needs and is what the simulated SGX
enclave executes internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.distribution import similarity_matrix


@dataclass
class ClientSimilarity:
    """A pair-wise dissimilarity matrix together with its client-id index."""

    client_ids: Tuple[int, ...]
    matrix: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.client_ids)
        if self.matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match {n} client ids"
            )

    def value(self, client_a: int, client_b: int) -> float:
        """EMD between the datasets of two clients."""
        index = {cid: i for i, cid in enumerate(self.client_ids)}
        if client_a not in index or client_b not in index:
            raise KeyError(f"unknown client pair ({client_a}, {client_b})")
        return float(self.matrix[index[client_a], index[client_b]])

    def submatrix(self, client_ids: Sequence[int]) -> "ClientSimilarity":
        """Restrict the matrix to a subset of clients (a round's selection)."""
        index = {cid: i for i, cid in enumerate(self.client_ids)}
        missing = [cid for cid in client_ids if cid not in index]
        if missing:
            raise KeyError(f"clients {missing} not present in the similarity matrix")
        rows = [index[cid] for cid in client_ids]
        return ClientSimilarity(
            client_ids=tuple(int(c) for c in client_ids),
            matrix=self.matrix[np.ix_(rows, rows)].copy(),
        )


def compute_similarity_matrix(
    class_counts_by_client: Dict[int, np.ndarray]
) -> ClientSimilarity:
    """Compute the pair-wise EMD matrix from per-client class counts.

    This is the computation the paper executes inside the SGX enclave; the
    reproduction calls it from :class:`repro.core.enclave.SGXEnclave` so the
    raw class counts never reach federator code.
    """
    if not class_counts_by_client:
        raise ValueError("need at least one client distribution")
    client_ids: List[int] = sorted(class_counts_by_client)
    counts = [np.asarray(class_counts_by_client[cid], dtype=np.float64) for cid in client_ids]
    lengths = {c.shape[0] for c in counts}
    if len(lengths) != 1:
        raise ValueError("all class-count vectors must have the same length")
    matrix = similarity_matrix(counts)
    return ClientSimilarity(client_ids=tuple(client_ids), matrix=matrix)
