"""Model freezing, splitting and recombination (§4.1 of the paper).

A weak client that offloads its training freezes its feature
(convolutional) layers, ships the model to a strong client, and keeps
training only its classifier layers.  The strong client trains the frozen
feature layers on its own dataset.  At aggregation time the federator
recombines the two halves: feature layers from the strong client,
classifier layers from the weak client.

The helpers in this module operate on the flat weight dictionaries produced
by :meth:`repro.nn.model.SplitCNN.get_weights`, whose keys are prefixed
with ``"features."`` or ``"classifier."``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.model import SplitCNN

Weights = Dict[str, np.ndarray]


def split_weights(weights: Weights) -> Tuple[Weights, Weights]:
    """Split a flat weight dictionary into (feature, classifier) parts."""
    features: Weights = {}
    classifier: Weights = {}
    for key, value in weights.items():
        if key.startswith(SplitCNN.FEATURE_PREFIX + "."):
            features[key] = value
        elif key.startswith(SplitCNN.CLASSIFIER_PREFIX + "."):
            classifier[key] = value
        else:
            raise KeyError(f"weight key {key!r} belongs to neither section")
    return features, classifier


def merge_weights(feature_weights: Weights, classifier_weights: Weights) -> Weights:
    """Merge feature and classifier weights back into one dictionary.

    Raises if the two parts overlap or if either contains keys from the
    wrong section, which would indicate a recombination bug.
    """
    for key in feature_weights:
        if not key.startswith(SplitCNN.FEATURE_PREFIX + "."):
            raise KeyError(f"{key!r} is not a feature weight")
    for key in classifier_weights:
        if not key.startswith(SplitCNN.CLASSIFIER_PREFIX + "."):
            raise KeyError(f"{key!r} is not a classifier weight")
    merged: Weights = {}
    merged.update(feature_weights)
    merged.update(classifier_weights)
    return merged


def recombine_offloaded_model(
    weak_client_weights: Weights, strong_client_feature_weights: Weights
) -> Weights:
    """Reconstruct a weak client's contribution after offloading.

    The classifier layers come from the weak client (which kept training
    them locally); the feature layers come from the strong client that
    trained them on its own dataset (§3.3 "Model aggregation").  The merge
    is explicitly filtered: *only* the feature keys of the strong client's
    payload are used — any classifier keys it ships are discarded in favour
    of the weak client's, which is the paper's aggregation contract.
    """
    _, classifier = split_weights(weak_client_weights)
    features, _ignored_strong_classifier = split_weights(strong_client_feature_weights)
    if not features:
        raise ValueError("strong client payload contains no feature weights")
    return merge_weights(features, classifier)


@dataclass
class FrozenModelPackage:
    """The payload a weak client ships to its matched strong client.

    Attributes
    ----------
    source_client_id:
        The weak client that froze and offloaded its model.
    round_number:
        Global round the offload belongs to (stale packages are ignored).
    weights:
        Full model weights at the moment of freezing — the strong client
        needs both sections: it trains the features and keeps the classifier
        fixed to compute gradients.  ``None`` when the package was built
        from a model's flat buffer (:meth:`from_model`), in which case
        :attr:`flat_weights` holds the same state as one contiguous vector.
    batches_to_train:
        Number of local batch updates the strong client should run on the
        offloaded feature layers (the ``op`` output of Algorithm 2).
    flat_weights:
        Full model state as one flat vector in
        :meth:`repro.nn.model.SplitCNN.get_flat_weights` layout; preferred
        over ``weights`` when present (no per-key dictionaries are built
        anywhere on the offload path).
    """

    source_client_id: int
    round_number: int
    weights: Optional[Weights] = field(default=None, repr=False)
    batches_to_train: int = 0
    flat_weights: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.batches_to_train < 0:
            raise ValueError("batches_to_train cannot be negative")
        has_dict = bool(self.weights)
        has_flat = self.flat_weights is not None and self.flat_weights.size > 0
        if not has_dict and not has_flat:
            raise ValueError("an offloaded package must contain model weights")

    @classmethod
    def from_model(
        cls,
        model: SplitCNN,
        source_client_id: int,
        round_number: int,
        batches_to_train: int,
    ) -> "FrozenModelPackage":
        """Snapshot a model's full state as a flat vector (no dict is built)."""
        return cls(
            source_client_id=source_client_id,
            round_number=round_number,
            batches_to_train=batches_to_train,
            flat_weights=model.get_flat_weights(),
        )

    def load_into(self, model: SplitCNN) -> None:
        """Restore the packaged state into ``model`` (flat path when available)."""
        if self.flat_weights is not None:
            model.set_flat_weights(self.flat_weights)
        else:
            model.set_weights(self.weights or {})

    def num_parameters(self) -> int:
        """Number of scalar parameters carried by the package."""
        if self.flat_weights is not None:
            return int(self.flat_weights.size)
        return int(sum(array.size for array in (self.weights or {}).values()))

    def payload_bytes(self) -> float:
        """Size of the package on the wire (charged by the network model).

        Payloads are charged at the canonical wire width
        (:data:`repro.simulation.network.WIRE_BYTES_PER_PARAM`) regardless
        of the in-memory compute dtype, so simulated communication times do
        not depend on whether the engine runs in float32 or float64.
        """
        from repro.simulation.network import WIRE_BYTES_PER_PARAM

        return float(self.num_parameters() * WIRE_BYTES_PER_PARAM)
