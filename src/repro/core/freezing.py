"""Model freezing, splitting and recombination (§4.1 of the paper).

A weak client that offloads its training freezes its feature
(convolutional) layers, ships the model to a strong client, and keeps
training only its classifier layers.  The strong client trains the frozen
feature layers on its own dataset.  At aggregation time the federator
recombines the two halves: feature layers from the strong client,
classifier layers from the weak client.

The helpers in this module operate on the flat weight dictionaries produced
by :meth:`repro.nn.model.SplitCNN.get_weights`, whose keys are prefixed
with ``"features."`` or ``"classifier."``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.nn.model import SplitCNN

Weights = Dict[str, np.ndarray]


def split_weights(weights: Weights) -> Tuple[Weights, Weights]:
    """Split a flat weight dictionary into (feature, classifier) parts."""
    features: Weights = {}
    classifier: Weights = {}
    for key, value in weights.items():
        if key.startswith(SplitCNN.FEATURE_PREFIX + "."):
            features[key] = value
        elif key.startswith(SplitCNN.CLASSIFIER_PREFIX + "."):
            classifier[key] = value
        else:
            raise KeyError(f"weight key {key!r} belongs to neither section")
    return features, classifier


def merge_weights(feature_weights: Weights, classifier_weights: Weights) -> Weights:
    """Merge feature and classifier weights back into one dictionary.

    Raises if the two parts overlap or if either contains keys from the
    wrong section, which would indicate a recombination bug.
    """
    for key in feature_weights:
        if not key.startswith(SplitCNN.FEATURE_PREFIX + "."):
            raise KeyError(f"{key!r} is not a feature weight")
    for key in classifier_weights:
        if not key.startswith(SplitCNN.CLASSIFIER_PREFIX + "."):
            raise KeyError(f"{key!r} is not a classifier weight")
    merged: Weights = {}
    merged.update(feature_weights)
    merged.update(classifier_weights)
    return merged


def recombine_offloaded_model(
    weak_client_weights: Weights, strong_client_feature_weights: Weights
) -> Weights:
    """Reconstruct a weak client's contribution after offloading.

    The classifier layers come from the weak client (which kept training
    them locally); the feature layers come from the strong client that
    trained them on its own dataset (§3.3 "Model aggregation").
    """
    _, classifier = split_weights(weak_client_weights)
    features, extra_classifier = split_weights(strong_client_feature_weights)
    if extra_classifier:
        # The strong client only returns feature layers; any classifier keys
        # in its payload are ignored in favour of the weak client's.
        pass
    if not features:
        raise ValueError("strong client payload contains no feature weights")
    return merge_weights(features, classifier)


@dataclass
class FrozenModelPackage:
    """The payload a weak client ships to its matched strong client.

    Attributes
    ----------
    source_client_id:
        The weak client that froze and offloaded its model.
    round_number:
        Global round the offload belongs to (stale packages are ignored).
    weights:
        Full model weights at the moment of freezing — the strong client
        needs both sections: it trains the features and keeps the classifier
        fixed to compute gradients.
    batches_to_train:
        Number of local batch updates the strong client should run on the
        offloaded feature layers (the ``op`` output of Algorithm 2).
    """

    source_client_id: int
    round_number: int
    weights: Weights = field(repr=False)
    batches_to_train: int = 0

    def __post_init__(self) -> None:
        if self.batches_to_train < 0:
            raise ValueError("batches_to_train cannot be negative")
        if not self.weights:
            raise ValueError("an offloaded package must contain model weights")

    def payload_bytes(self) -> float:
        """Size of the package on the wire (charged by the network model)."""
        return float(sum(array.nbytes for array in self.weights.values()))
