"""Aergia's centralized scheduling algorithms (Algorithms 1 and 2, §4.3-4.4).

The federator uses the per-phase timings reported by the online profiler to
identify straggling clients and to pair each straggler with a strong client
that (i) has spare capacity and (ii) owns a dataset sufficiently similar to
the straggler's.  Two functions implement the paper's pseudo-code:

* :func:`calc_op` — Algorithm 2, the optimal offloading point between a
  weak client ``a`` and a candidate strong client ``b``;
* :func:`schedule_offloading` — Algorithm 1, the greedy
  longest-processing-time-first matching of weak and strong clients with
  the similarity-weighted cost of line 24.

Both operate on plain data (no simulation or FL dependencies) so they can
be unit- and property-tested in isolation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.offloading import OffloadAssignment, OffloadPlan


@dataclass(frozen=True)
class ClientPerformance:
    """Performance indicators of one client, derived from its profile report.

    Attributes
    ----------
    client_id:
        The client the indicators belong to.
    head_seconds:
        Duration of phases 1-3 of a batch (ff + fc + bc), ``t_{j,{1,2,3}}``.
    tail_seconds:
        Duration of phase 4 (bf), ``t_{j,4}``.
    feature_training_seconds:
        Duration of training only the feature layers of an offloaded model
        on this client (``x_b`` in Algorithm 2).
    remaining_batches:
        Local updates the client still has to perform (``ru_j``).
    """

    client_id: int
    head_seconds: float
    tail_seconds: float
    feature_training_seconds: float
    remaining_batches: int

    def __post_init__(self) -> None:
        if self.head_seconds < 0 or self.tail_seconds < 0 or self.feature_training_seconds < 0:
            raise ValueError("durations cannot be negative")
        if self.remaining_batches < 0:
            raise ValueError("remaining_batches cannot be negative")

    @property
    def batch_seconds(self) -> float:
        """Duration of one complete local update."""
        return self.head_seconds + self.tail_seconds

    @property
    def estimated_completion(self) -> float:
        """Projected time to finish all remaining local updates."""
        return self.remaining_batches * self.batch_seconds


@dataclass
class SchedulerDecision:
    """Output of Algorithm 1 for one round."""

    plan: OffloadPlan
    mean_compute_time: float
    sending_clients: Tuple[int, ...]
    receiving_clients: Tuple[int, ...]


def calc_op(
    weak_batch_seconds: float,
    strong_batch_seconds: float,
    strong_feature_seconds: float,
    weak_remaining: int,
    strong_remaining: int,
) -> Tuple[float, int]:
    """Algorithm 2: the optimal offloading point between two clients.

    Parameters map one-to-one onto the paper's inputs: ``t_a``, ``t_b``,
    ``x_b``, ``r_a`` and ``r_b``.  For every candidate number ``d`` of
    offloaded updates the estimated completion time of the pair is::

        max((r_a - d) * t_a + d * x_b,   # weak client's branch
            (r_b - d) * t_b)             # strong client's branch

    i.e. the weak client performs ``r_a - d`` full local updates and the
    remaining ``d`` updates' feature training is executed on the strong
    client at cost ``x_b`` each, while the strong client gives up ``d`` of
    its own updates to make room for the offloaded work.  The function
    returns the smallest estimated completion time and the corresponding
    ``d``.

    The paper's pseudo-code stops as soon as the objective increases (the
    curve is unimodal) and returns the previous value; this implementation
    does the same but returns the *arg-min* ``d`` (the pseudo-code's
    returned ``d`` is off by one, which we treat as a typo).

    Returns
    -------
    tuple
        ``(estimated_completion_seconds, offload_batches)``.  With no
        feasible offloading point (``min(r_a, r_b) < 1``) the weak client's
        unassisted completion time and ``d = 0`` are returned.
    """
    if weak_batch_seconds < 0 or strong_batch_seconds < 0 or strong_feature_seconds < 0:
        raise ValueError("batch durations cannot be negative")
    if weak_remaining < 0 or strong_remaining < 0:
        raise ValueError("remaining update counts cannot be negative")

    best_ct = weak_remaining * weak_batch_seconds
    best_d = 0
    for d in range(1, min(weak_remaining, strong_remaining) + 1):
        weak_branch = (weak_remaining - d) * weak_batch_seconds + d * strong_feature_seconds
        strong_branch = (strong_remaining - d) * strong_batch_seconds
        current_ct = max(weak_branch, strong_branch)
        if current_ct > best_ct:
            break
        best_ct = current_ct
        best_d = d
    return best_ct, best_d


def _similarity_lookup(
    similarity: Optional[np.ndarray],
    index_of: Dict[int, int],
    client_a: int,
    client_b: int,
) -> float:
    """Pairwise dissimilarity of two clients (0 when no matrix is provided)."""
    if similarity is None:
        return 0.0
    i = index_of.get(client_a)
    j = index_of.get(client_b)
    if i is None or j is None:
        return 0.0
    return float(similarity[i, j])


def schedule_offloading(
    performances: Sequence[ClientPerformance],
    similarity: Optional[np.ndarray] = None,
    similarity_client_ids: Optional[Sequence[int]] = None,
    similarity_factor: float = 1.0,
    round_number: int = -1,
    straggler_tolerance: float = 0.02,
) -> SchedulerDecision:
    """Algorithm 1: compute the freeze/offload schedule for one round.

    Parameters
    ----------
    performances:
        One :class:`ClientPerformance` per client participating in the
        round (derived from the profile reports).
    similarity:
        The pair-wise dataset dissimilarity matrix ``S`` computed by the
        enclave (EMD values; lower means more similar).  ``None`` disables
        the similarity term, which is equivalent to ``similarity_factor=0``.
    similarity_client_ids:
        The client id corresponding to each row/column of ``similarity``.
        Defaults to the order of ``performances``.
    similarity_factor:
        The ``f`` parameter of line 24; ``0`` ignores data similarity.
    round_number:
        Stored in the returned plan for bookkeeping.
    straggler_tolerance:
        Relative margin above the mean compute time a client must exceed to
        be classified as a straggler.  The paper's pseudo-code uses a strict
        ``> mct`` comparison; real profiling measurements carry clock-skew
        and overhead jitter, so a small tolerance prevents an (effectively
        homogeneous) cluster from scheduling spurious offloads.

    Returns
    -------
    SchedulerDecision
        The offloading plan plus the intermediate quantities (mean compute
        time, sender/receiver sets) that the evaluation figures report.
    """
    if similarity_factor < 0:
        raise ValueError("similarity_factor must be non-negative")
    if straggler_tolerance < 0:
        raise ValueError("straggler_tolerance must be non-negative")
    if not performances:
        return SchedulerDecision(
            plan=OffloadPlan(round_number=round_number, mean_compute_time=0.0),
            mean_compute_time=0.0,
            sending_clients=(),
            receiving_clients=(),
        )

    ids = [p.client_id for p in performances]
    if len(set(ids)) != len(ids):
        raise ValueError("duplicate client ids in performance list")

    if similarity is not None:
        sim_ids = list(similarity_client_ids) if similarity_client_ids is not None else ids
        if similarity.shape[0] != similarity.shape[1] or similarity.shape[0] != len(sim_ids):
            raise ValueError("similarity matrix shape does not match the client id list")
        index_of = {client_id: index for index, client_id in enumerate(sim_ids)}
    else:
        index_of = {}

    by_id = {p.client_id: p for p in performances}

    # Line 12: mean compute time over the active clients.
    mean_compute_time = float(np.mean([p.estimated_completion for p in performances]))

    # Lines 13-14: senders are the clients whose projected completion exceeds
    # the mean (by the jitter tolerance); receivers are the rest.
    threshold = mean_compute_time * (1.0 + straggler_tolerance)
    sending = [p for p in performances if p.estimated_completion > threshold]
    receiving = [p for p in performances if p.estimated_completion <= threshold]

    # Lines 15-16: the weakest senders are matched first (the round duration
    # is determined by the slowest client), so senders are ordered by
    # decreasing projected completion time; receivers by increasing one.
    sending.sort(key=lambda p: p.estimated_completion, reverse=True)
    receiving.sort(key=lambda p: p.estimated_completion)

    plan = OffloadPlan(
        round_number=round_number,
        mean_compute_time=mean_compute_time,
        senders=[p.client_id for p in sending],
        receivers=[p.client_id for p in receiving],
    )

    available = list(receiving)
    for weak in sending:
        if not available:
            break
        selected: Optional[ClientPerformance] = None
        selected_cost = math.inf
        selected_ct = math.inf
        selected_op = 0
        for strong in available:
            ct, op = calc_op(
                weak_batch_seconds=weak.batch_seconds,
                strong_batch_seconds=strong.batch_seconds,
                strong_feature_seconds=strong.feature_training_seconds,
                weak_remaining=weak.remaining_batches,
                strong_remaining=strong.remaining_batches,
            )
            if op == 0:
                continue
            dissimilarity = _similarity_lookup(
                similarity, index_of, weak.client_id, strong.client_id
            )
            cost = ct * (1.0 + math.log(dissimilarity * similarity_factor + 1.0))
            if cost < selected_cost:
                selected_cost = cost
                selected_ct = ct
                selected_op = op
                selected = strong
        if selected is None or selected_op == 0:
            continue
        # Offloading must actually help the weak client; a pairing whose
        # estimated completion is no better than training alone is skipped.
        if selected_ct >= weak.estimated_completion:
            continue
        plan.add(
            OffloadAssignment(
                weak_client=weak.client_id,
                strong_client=selected.client_id,
                offload_batches=selected_op,
                estimated_duration=selected_ct,
                cost=selected_cost,
            )
        )
        available = [p for p in available if p.client_id != selected.client_id]

    # Keep a deterministic, useful ordering of the plan fields.
    _ = by_id  # retained for future extensions (e.g. multi-hop offloading)
    return SchedulerDecision(
        plan=plan,
        mean_compute_time=mean_compute_time,
        sending_clients=tuple(p.client_id for p in sending),
        receiving_clients=tuple(p.client_id for p in receiving),
    )
