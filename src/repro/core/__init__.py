"""Aergia: the paper's primary contribution.

This package implements everything that distinguishes Aergia from a plain
synchronous federated-learning system:

* :mod:`repro.core.profiler` — the online profiler measuring the four
  training phases during the first local updates of a round (§4.2),
* :mod:`repro.core.freezing` — model freezing and model splitting/
  recombination utilities (§4.1),
* :mod:`repro.core.offloading` — the offload task descriptions exchanged
  between weak and strong clients,
* :mod:`repro.core.scheduler` — Algorithm 1 (freeze/offload scheduling)
  and Algorithm 2 (optimal offloading point),
* :mod:`repro.core.similarity` — dataset-similarity computation based on
  the Earth Mover's Distance (§4.4),
* :mod:`repro.core.enclave` — a simulated Intel SGX enclave enforcing that
  raw client class distributions never reach the federator,
* :mod:`repro.core.aergia` — the Aergia federator strategy tying
  everything together (imported lazily to avoid import cycles with
  :mod:`repro.fl`).
"""

from repro.core.profiler import OnlineProfiler, PhaseProfile, profile_model_phases
from repro.core.freezing import (
    split_weights,
    merge_weights,
    recombine_offloaded_model,
    FrozenModelPackage,
)
from repro.core.offloading import OffloadAssignment, OffloadPlan
from repro.core.scheduler import (
    ClientPerformance,
    SchedulerDecision,
    calc_op,
    schedule_offloading,
)
from repro.core.similarity import compute_similarity_matrix
from repro.core.enclave import SGXEnclave, EnclaveError, AttestationReport

__all__ = [
    "OnlineProfiler",
    "PhaseProfile",
    "profile_model_phases",
    "split_weights",
    "merge_weights",
    "recombine_offloaded_model",
    "FrozenModelPackage",
    "OffloadAssignment",
    "OffloadPlan",
    "ClientPerformance",
    "SchedulerDecision",
    "calc_op",
    "schedule_offloading",
    "compute_similarity_matrix",
    "SGXEnclave",
    "EnclaveError",
    "AttestationReport",
    "AergiaFederator",
]


def __getattr__(name: str):
    """Lazily expose the Aergia federator to avoid an import cycle with repro.fl."""
    if name == "AergiaFederator":
        from repro.core.aergia import AergiaFederator

        return AergiaFederator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
