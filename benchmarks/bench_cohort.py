"""Cohort-scaling benchmark: peak memory and wall-clock vs. cohort size.

Demonstrates the virtualized client pool's headline property — a run with
``num_clients=1000, clients_per_round=16`` costs roughly what a 16-client
run costs, because memory and per-round setup track the *participants*, not
the cohort.  Each cohort size runs the same churn workload (identical
``clients_per_round``, rounds, local updates and train set) in a fresh
subprocess, so each measurement gets its own peak-RSS high-water mark.

Writes ``BENCH_cohort.json`` with, per cohort size:

* ``peak_rss_kb`` — the subprocess's ``ru_maxrss`` after the run,
* ``build_seconds`` / ``run_seconds`` — experiment assembly and execution
  wall-clock,
* ``pool`` — hydration/eviction counters (eager runs report ``None``),
* the run's result summary (accuracy, dropped clients, virtual time),

plus the scaling assertions:

* **bounded growth** — the largest cohort's peak RSS stays under
  ``--max-growth`` (default 3.0) times the 16-client baseline's, and
* **sub-linearity** — RSS grows by a far smaller factor than the cohort
  does between the two largest sizes.

Usage::

    PYTHONPATH=src python benchmarks/bench_cohort.py              # full ladder
    PYTHONPATH=src python benchmarks/bench_cohort.py --quick      # CI ladder
    PYTHONPATH=src python benchmarks/bench_cohort.py --cohorts 16 1000
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Workload shared by every cohort size: only ``num_clients`` varies.
WORKLOAD = {
    "dataset": "mnist",
    "architecture": "mnist-cnn",
    "algorithm": "fedavg",
    "partition": "noniid",
    "clients_per_round": 16,
    "rounds": 3,
    "local_updates": 4,
    "profile_batches": 0,
    "train_size": 4096,
    "test_size": 256,
    "batch_size": 16,
    "dtype": "float32",
    "seed": 42,
}


def _child_main(num_clients: int) -> None:
    """Run one cohort in this (fresh) process and print its measurements."""
    import numpy as np  # noqa: F401  (imported before timing: not charged to build)

    from repro.experiments.workloads import scenario_dynamics
    from repro.fl.config import ExperimentConfig
    from repro.fl.runtime import build_experiment

    config = ExperimentConfig(
        num_clients=num_clients,
        dynamics=scenario_dynamics("churn"),
        **WORKLOAD,
    )
    start = time.perf_counter()
    handle = build_experiment(config)
    built = time.perf_counter()
    result = handle.run()
    finished = time.perf_counter()
    payload = {
        "num_clients": num_clients,
        "client_pool": "virtual" if handle.pool is not None else "eager",
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "build_seconds": built - start,
        "run_seconds": finished - built,
        "pool": handle.pool.describe() if handle.pool is not None else None,
        "summary": result.summary(),
    }
    print(json.dumps(payload))


def _measure(num_clients: int) -> dict:
    """Run one cohort in a subprocess and parse its JSON measurement line."""
    pythonpath = os.pathsep.join(
        part for part in (str(SRC), os.environ.get("PYTHONPATH", "")) if part
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", str(num_clients)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": pythonpath},
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"cohort {num_clients} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_bench(cohorts, max_growth: float, output: Path) -> dict:
    rows = []
    for num_clients in cohorts:
        row = _measure(num_clients)
        rows.append(row)
        pool = row["pool"]
        print(
            f"  cohort {num_clients:>5}: peak RSS {row['peak_rss_kb'] / 1024:7.1f} MiB  "
            f"build {row['build_seconds']:.2f}s  run {row['run_seconds']:.2f}s  "
            f"pool={'-' if pool is None else pool['peak_hydrated']}",
            file=sys.stderr,
        )

    baseline, largest = rows[0], rows[-1]
    growth = largest["peak_rss_kb"] / baseline["peak_rss_kb"]
    cohort_factor = largest["num_clients"] / rows[-2]["num_clients"] if len(rows) > 1 else 1.0
    rss_factor = (
        largest["peak_rss_kb"] / rows[-2]["peak_rss_kb"] if len(rows) > 1 else 1.0
    )
    report = {
        "workload": WORKLOAD,
        "scenario": "churn",
        "cohorts": rows,
        "assertions": {
            "baseline_clients": baseline["num_clients"],
            "largest_clients": largest["num_clients"],
            "rss_growth_vs_baseline": growth,
            "max_allowed_growth": max_growth,
            "bounded_growth_ok": growth < max_growth,
            "last_step_cohort_factor": cohort_factor,
            "last_step_rss_factor": rss_factor,
            "sublinear_ok": rss_factor < cohort_factor,
        },
    }
    output.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"results written to {output}", file=sys.stderr)

    if not report["assertions"]["bounded_growth_ok"]:
        raise SystemExit(
            f"FAIL: {largest['num_clients']}-client peak RSS is {growth:.2f}x the "
            f"{baseline['num_clients']}-client baseline (limit {max_growth}x)"
        )
    if not report["assertions"]["sublinear_ok"]:
        raise SystemExit(
            f"FAIL: RSS grew {rss_factor:.2f}x over the last {cohort_factor:.1f}x "
            "cohort step — memory is not sub-linear in cohort size"
        )
    print(
        f"OK: {largest['num_clients']} clients cost {growth:.2f}x the "
        f"{baseline['num_clients']}-client baseline's memory "
        f"(RSS {rss_factor:.2f}x over the last {cohort_factor:.1f}x cohort step)",
        file=sys.stderr,
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument(
        "--cohorts",
        type=int,
        nargs="+",
        default=None,
        help="cohort sizes to measure (ascending; first is the baseline)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="small ladder for CI (16/250/1000)"
    )
    parser.add_argument(
        "--max-growth",
        type=float,
        default=3.0,
        help="largest cohort's allowed peak-RSS multiple of the baseline (default 3.0)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_cohort.json"), help="JSON output path"
    )
    args = parser.parse_args(argv)

    if args.child is not None:
        _child_main(args.child)
        return 0

    cohorts = args.cohorts
    if cohorts is None:
        cohorts = [16, 250, 1000] if args.quick else [16, 64, 250, 1000, 2000]
    if sorted(cohorts) != list(cohorts):
        parser.error("--cohorts must be ascending (first entry is the baseline)")
    run_bench(cohorts, max_growth=args.max_growth, output=args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
