"""BENCH_serve: throughput/latency of the ``repro serve`` service mode.

Thin wrapper over :func:`repro.serve.loadgen.run_loadgen` (also reachable
as ``repro bench --serve``): starts a server subprocess, hosts concurrent
churn experiments, replays a high-rate mixed client workload from worker
processes, and writes per-endpoint throughput and p50/p95/p99 latency to
``BENCH_serve.json``.

    python benchmarks/loadgen.py                  # full: 100k events
    python benchmarks/loadgen.py --events 2000    # quick CI pass
"""

from __future__ import annotations

import argparse

import conftest  # noqa: F401  (makes repro importable from a source tree)

from repro.serve.loadgen import render_loadgen, run_loadgen


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=100_000, help="total client events")
    parser.add_argument("--experiments", type=int, default=4, help="concurrent hosted runs")
    parser.add_argument("--workers", type=int, default=4, help="client worker processes")
    parser.add_argument("--batch", type=int, default=200, help="check-in events per request")
    parser.add_argument("--output", default="BENCH_serve.json", help="result JSON path")
    args = parser.parse_args()
    results = run_loadgen(
        events=args.events,
        experiments=args.experiments,
        workers=args.workers,
        batch=args.batch,
        output=args.output,
    )
    print(render_loadgen(results))
    print(f"\nresults written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
