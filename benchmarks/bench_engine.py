"""Compute-engine microbenchmarks: optimised hot path vs the seed engine.

Times the three per-round hot paths — ``SplitCNN.train_batch``, evaluation
forward passes, and 16-client FedAvg/FedNova aggregation — against the
behaviour-preserved seed implementation (:mod:`repro.nn.reference`), and
asserts the headline engine claims:

* >= 1.5x on the per-batch train step (float32 fast path vs seed), and
* >= 3x on 16-client FedAvg aggregation (flat vectors vs per-key loops),
* >= 2x on a 32-client round step (lockstep batched cohort vs the
  per-client loop, mnist-cnn float32),
* identical PhaseTrace FLOP counts across engines and dtypes.

Results are printed as a table and written to ``BENCH_engine.json``.  The
same benchmark is available as ``python -m repro bench --engine``.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.experiments.engine_bench import render_engine_bench, run_engine_bench
from repro.nn.architectures import build_model
from repro.nn.dtype import using_dtype
from repro.nn.reference import REFERENCE_ARCHITECTURES, ReferenceSGD


def test_engine_speedups(benchmark, print_figure):
    results = run_once(benchmark, run_engine_bench, output_path="BENCH_engine.json")
    print_figure(render_engine_bench(results))

    train = results["train_step"]
    for arch, row in train.items():
        assert row["speedup"] >= 1.5, (
            f"train step on {arch}: expected >=1.5x vs seed engine, got {row['speedup']:.2f}x"
        )
    fedavg = results["aggregation"]["mnist-cnn"]["fedavg"]
    assert fedavg["speedup"] >= 3.0, (
        f"16-client FedAvg aggregation: expected >=3x vs seed engine, "
        f"got {fedavg['speedup']:.2f}x"
    )
    round_step = results["round_step"]["mnist-cnn"]
    assert round_step["float32_speedup"] >= 2.0, (
        f"32-client batched round step: expected >=2x vs the per-client loop, "
        f"got {round_step['float32_speedup']:.2f}x"
    )


def test_flop_counts_identical_across_engines(print_figure):
    """PhaseTrace FLOPs are shape-derived: engine and dtype must not matter."""
    rng = np.random.default_rng(3)
    x64 = rng.normal(size=(8, 1, 28, 28))
    y = rng.integers(0, 10, size=8)

    reference = REFERENCE_ARCHITECTURES["mnist-cnn"](np.random.default_rng(0))
    _, ref_trace = reference.train_batch(x64, y, ReferenceSGD(lr=0.05, model=reference))

    traces = {"reference(float64)": ref_trace}
    for dtype_name in ("float64", "float32"):
        with using_dtype(dtype_name):
            model = build_model("mnist-cnn", rng=np.random.default_rng(0))
        from repro.nn.optim import SGD

        _, trace = model.train_batch(x64.astype(model.dtype), y, SGD(lr=0.05))
        traces[f"optimised({dtype_name})"] = trace

    lines = ["per-phase FLOPs, one mnist-cnn batch of 8:"]
    for name, trace in traces.items():
        lines.append(
            "  "
            + f"{name:<22} "
            + "  ".join(f"{phase.value}={trace.flops[phase]:.0f}" for phase in trace.flops)
        )
        assert trace.flops == ref_trace.flops
    print_figure("\n".join(lines))
