"""Ablation benches for the design choices called out in DESIGN.md.

* profiling length (how many batches the online profiler observes),
* Algorithm 2's optimal offloading point vs a naive fixed midpoint,
* freezing the feature layers (the paper's choice) vs the classifier.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import (
    ablation_freeze_side,
    ablation_offload_point,
    ablation_profile_length,
)


def test_ablation_profile_length(benchmark, print_figure):
    data = run_once(benchmark, ablation_profile_length)
    print_figure(data["render"])
    times = data["total_time_s"]
    accuracy = data["final_accuracy"]
    # All profiling lengths produce working schedules: every run completes the
    # full round budget with a usable model and broadly similar total times.
    assert all(acc > 0.1 for acc in accuracy.values())
    assert max(times.values()) <= min(times.values()) * 1.6


def test_ablation_offload_point(benchmark, print_figure):
    data = run_once(benchmark, ablation_offload_point)
    print_figure(data["render"])
    for ratio, improvement in data["improvements"].items():
        # The optimal search never loses to the midpoint heuristic, and helps
        # substantially when the speed gap is large.
        assert improvement >= -1e-9
    assert data["improvements"][max(data["improvements"])] > 0.10


def test_ablation_freeze_side(benchmark, print_figure):
    data = run_once(benchmark, ablation_freeze_side)
    print_figure(data["render"])
    for workload, saving in data["savings"].items():
        assert saving["freeze_features_saving_pct"] > 2 * saving["freeze_classifier_saving_pct"], (
            workload
        )
