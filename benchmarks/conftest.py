"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
"bench" scale (override with ``REPRO_SCALE=full`` for paper-sized runs) and
prints the regenerated rows/series so they can be compared with the paper;
EXPERIMENTS.md records that comparison.

The figure functions route their sweeps through
:func:`repro.experiments.parallel.run_suite`, so the whole harness can be
parallelised and/or cached without code changes: set ``REPRO_WORKERS=8``
and/or ``REPRO_CACHE_DIR=.repro-cache`` before invoking pytest.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))
SRC_ROOT = REPO_ROOT / "src"
if str(SRC_ROOT) not in sys.path:
    sys.path.insert(0, str(SRC_ROOT))

# Benchmarks default to the "bench" scale unless the user overrides it.
os.environ.setdefault("REPRO_SCALE", "bench")

# Every figure sweep routes through repro.experiments.parallel.run_suite,
# which reads REPRO_WORKERS/REPRO_CACHE_DIR itself (serial when unset) —
# no explicit configure() call is needed here.


@pytest.fixture
def print_figure(capsys):
    """Print a figure rendering so it survives pytest's output capturing."""

    def _print(rendering: str) -> None:
        with capsys.disabled():
            print()
            print(rendering)
            print()

    return _print


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
