"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
"bench" scale (override with ``REPRO_SCALE=full`` for paper-sized runs) and
prints the regenerated rows/series so they can be compared with the paper;
EXPERIMENTS.md records that comparison.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

# Benchmarks default to the "bench" scale unless the user overrides it.
os.environ.setdefault("REPRO_SCALE", "bench")


@pytest.fixture
def print_figure(capsys):
    """Print a figure rendering so it survives pytest's output capturing."""

    def _print(rendering: str) -> None:
        with capsys.disabled():
            print()
            print(rendering)
            print()

    return _print


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive figure regeneration exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
