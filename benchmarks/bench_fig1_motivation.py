"""Figure 1 (motivation): heterogeneity, deadlines, and their costs.

* Figure 1(a): round-duration multiplier grows with the variance of client
  CPU speeds and with the cluster size.
* Figure 1(b): imposing per-round deadlines bounds the total training time.
* Figure 1(c): those deadlines cost accuracy in the non-IID setting because
  dropped stragglers hold unique data.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure1a, figure1b_1c


def test_fig1a_cpu_variance(benchmark, print_figure):
    data = run_once(benchmark, figure1a)
    print_figure(data["render"])
    multipliers = data["multipliers"]
    variances = data["variances"]
    for clients, per_variance in multipliers.items():
        # The homogeneous case is the baseline (multiplier 1.0) and the most
        # heterogeneous case must be noticeably slower.
        assert per_variance[variances[0]] == 1.0
        assert per_variance[variances[-1]] > 1.1, f"no slowdown for {clients} clients"


def test_fig1b_1c_deadlines(benchmark, print_figure):
    """Figures 1(b) and 1(c) come from the same deadline sweep."""
    data = run_once(benchmark, figure1b_1c)
    print_figure(data["render"])
    times = data["total_time_s"]
    accuracy = data["final_accuracy"]
    dropped = data["dropped"]
    # Figure 1(b): tighter deadlines can only shorten (or keep) the total time,
    # and the tightest deadline is the fastest configuration.
    assert times["10s"] <= times["inf"] + 1e-6
    assert min(times.values()) == times["10s"]
    # Figure 1(c): the tightest deadline actually drops clients, and dropping
    # unique non-IID data does not improve the final accuracy.
    assert dropped["10s"] > 0
    assert accuracy["10s"] <= accuracy["inf"] + 0.1
