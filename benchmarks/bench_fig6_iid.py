"""Figure 6: accuracy and training time with IID client data.

The paper's observation (§5.2): with IID data all five algorithms reach a
comparable accuracy, but Aergia completes the same number of rounds in
noticeably less time than FedAvg and TiFL.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure6


def test_fig6_iid_accuracy_and_time(benchmark, print_figure):
    data = run_once(benchmark, figure6)
    print_figure(data["render"])
    accuracy = data["accuracy"]
    times = data["total_time_s"]
    for dataset in accuracy:
        # Aergia is faster than synchronous FedAvg on every dataset.
        assert times[dataset]["aergia"] < times[dataset]["fedavg"], dataset
    # Accuracy stays comparable: averaged over the three datasets, Aergia is
    # within a small margin of FedAvg.  (Per-dataset accuracy at the scaled
    # round budget is still early in training and therefore noisy; the full
    # REPRO_SCALE=full runs tighten this comparison.)
    import numpy as np

    aergia_mean = np.mean([accuracy[d]["aergia"] for d in accuracy])
    fedavg_mean = np.mean([accuracy[d]["fedavg"] for d in accuracy])
    assert aergia_mean >= fedavg_mean - 0.1
