"""Figure 10: test accuracy as a function of the degree of non-IIDness.

The paper trains Aergia on FMNIST with IID data and with clients restricted
to 10, 5 and 2 classes.  Completion times stay similar, but accuracy drops
as the data becomes more skewed.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure10


def test_fig10_noniid_degree(benchmark, print_figure):
    data = run_once(benchmark, figure10)
    print_figure(data["render"])
    accuracy = data["final_accuracy"]
    times = data["total_time_s"]

    # Accuracy shape: accuracy degrades as the label skew grows (the paper's
    # ordering IID >= non-IID(10) >= non-IID(5) >= non-IID(2)).
    assert accuracy["IID"] > accuracy["non-IID(2)"]
    assert max(accuracy["IID"], accuracy["non-IID(10)"]) >= accuracy["non-IID(5)"] - 0.05
    assert accuracy["non-IID(5)"] >= accuracy["non-IID(2)"] - 0.05

    # Completion-time shape: every variant trains for the same round budget;
    # total times stay within a modest factor (stronger skew restricts the
    # similarity-compatible offloading options and lengthens rounds a little,
    # the same effect Figure 9 quantifies).
    assert max(times.values()) <= min(times.values()) * 3.0

    # Every run produced a full accuracy-over-time curve.
    for label, timeline in data["accuracy_timeline"].items():
        assert len(timeline) >= 2, label
        assert all(t2 > t1 for (t1, _), (t2, _) in zip(timeline, timeline[1:])), label
