"""Online-profiler overhead (§4.2 and §5.4).

The paper reports that the online profiler costs 0.22 % ± 0.09 of the total
training time (and at most 0.58 %).  The reproduction charges the profiler
surcharge explicitly, so the overhead can be computed exactly and compared
against the paper's bound.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import profiler_overhead


def test_profiler_overhead_below_one_percent(benchmark, print_figure):
    data = run_once(benchmark, profiler_overhead)
    print_figure(data["render"])
    assert 0.0 < data["overhead_fraction"] < 0.01
    # The Aergia run (with profiling) still finishes faster than plain FedAvg
    # without profiling — the overhead is dwarfed by the offloading gains.
    assert data["aergia_total_time_s"] < data["fedavg_total_time_s"]
