"""Figure 9: impact of the similarity factor f on accuracy and round time.

The paper sweeps f over {1, 0.75, 0.5, 0.25, 0}: ignoring data similarity
(f = 0) gives the shortest rounds but hurts accuracy; a positive factor
restricts the offloading targets to data-compatible clients, trading a
little round time for better accuracy.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure9


def test_fig9_similarity_factor(benchmark, print_figure):
    data = run_once(benchmark, figure9)
    print_figure(data["render"])
    accuracy = data["accuracy"]
    round_time = data["mean_round_duration_s"]

    # Round-time shape: ignoring similarity (f=0) never yields longer rounds
    # than the most restrictive setting (f=1).
    assert round_time["f=0.0"] <= round_time["f=1.0"] * 1.05

    # Accuracy shape: using the similarity matrix (any positive f) is at least
    # as good as ignoring it, within a small tolerance for run-to-run noise.
    best_positive = max(acc for label, acc in accuracy.items() if label != "f=0.0")
    assert best_positive >= accuracy["f=0.0"] - 0.05
