"""Figure 7: accuracy and training time with non-IID client data.

The paper's observation (§5.2): non-IID data amplifies the impact of
resource heterogeneity; Aergia reduces the per-round and total training
time (up to 27 % vs FedAvg and 53 % vs TiFL) while keeping accuracy
comparable to the non-IID-aware baselines.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure7


def test_fig7_noniid_accuracy_and_time(benchmark, print_figure):
    data = run_once(benchmark, figure7)
    print_figure(data["render"])
    accuracy = data["accuracy"]
    times = data["total_time_s"]
    for dataset in accuracy:
        # Aergia finishes the same round budget faster than FedAvg.
        assert times[dataset]["aergia"] < times[dataset]["fedavg"], dataset
    # Accuracy stays comparable: averaged over the three datasets, Aergia is
    # within a small margin of FedAvg (per-dataset numbers at the scaled-down
    # round budget are noisy; REPRO_SCALE=full tightens this comparison).
    import numpy as np

    aergia_mean = np.mean([accuracy[d]["aergia"] for d in accuracy])
    fedavg_mean = np.mean([accuracy[d]["fedavg"] for d in accuracy])
    assert aergia_mean >= fedavg_mean - 0.1
