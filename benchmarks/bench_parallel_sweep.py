"""Parallel sweep runner: speed and determinism at bench scale.

Runs the Figure 6-style (dataset x algorithm) grid once through the serial
:func:`run_configs` path and once through :func:`run_configs_parallel`, and
checks the invariant the whole subsystem rests on: per-label summaries are
byte-identical regardless of how the sweep was executed.  The printed table
reports both wall-clocks; the speedup depends on the core count of the
machine (a single-core CI runner will show parity plus a small pool
overhead, a workstation shows near-linear scaling across cells).
"""

from __future__ import annotations

import json
import time

from conftest import run_once

from repro.experiments.parallel import default_workers, run_configs_parallel
from repro.experiments.report import format_table
from repro.experiments.runner import run_configs
from repro.experiments.workloads import evaluation_config, scale_from_env


def _grid():
    scale = scale_from_env()
    return {
        f"{dataset}/{algorithm}": evaluation_config(dataset, algorithm, "noniid", scale, seed=42)
        for dataset in ("mnist", "fmnist")
        for algorithm in ("fedavg", "tifl", "aergia")
    }


def test_parallel_sweep_matches_serial(benchmark, print_figure):
    configs = _grid()

    start = time.perf_counter()
    serial = run_configs(configs)
    serial_s = time.perf_counter() - start

    workers = default_workers()
    start = time.perf_counter()
    parallel = run_once(benchmark, run_configs_parallel, configs, workers=workers)
    parallel_s = time.perf_counter() - start

    rows = [
        ["serial", serial_s, 1],
        ["parallel", parallel_s, workers],
    ]
    print_figure(
        format_table(
            headers=["path", "wall_seconds", "workers"],
            rows=rows,
            title=f"Parallel sweep runner on {len(configs)} cells "
            f"(speedup {serial_s / parallel_s:.2f}x)",
        )
    )

    # Determinism: identical per-label summaries regardless of execution path.
    for label in configs:
        lhs = json.dumps(serial.results[label].summary(), sort_keys=True)
        rhs = json.dumps(parallel.results[label].summary(), sort_keys=True)
        assert lhs == rhs, f"serial/parallel summary diverged for {label}"
