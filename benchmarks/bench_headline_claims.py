"""Headline claims (§1, §5.2): Aergia's training-time reduction.

The paper reports that Aergia completes the same training in up to 27 %
less time than FedAvg and up to 53 % less time than TiFL, while keeping a
comparable accuracy.  This benchmark regenerates the three-way comparison
on the non-IID FMNIST workload and checks the direction (and rough
magnitude) of those reductions at the reproduction's scale.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import headline_claims


def test_headline_time_reductions(benchmark, print_figure):
    data = run_once(benchmark, headline_claims)
    print_figure(data["render"])

    # Aergia saves time against synchronous FedAvg.
    assert data["time_reduction_vs_fedavg"] > 0.05
    # TiFL pays for offline profiling and tiered selection; Aergia should not
    # be slower than it overall.
    assert data["time_reduction_vs_tifl"] > 0.0
    # Accuracy stays in the same ballpark (the scaled-down round budget leaves
    # all algorithms early in training, so a generous margin is used here; the
    # accuracy trends are examined dataset-by-dataset in Figures 6 and 7).
    assert data["accuracy_delta_vs_fedavg"] > -0.25
    assert data["accuracy_delta_vs_tifl"] > -0.25
