"""Figure 4: share of a local update spent in each training phase.

The paper profiles five (dataset, network) pairs and finds that the
backward pass over the feature layers (``bf``) dominates, taking 52-75 % of
a local update.  The reproduction regenerates the same five bars and checks
that ``bf`` dominates every workload.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure4


def test_fig4_phase_breakdown(benchmark, print_figure):
    data = run_once(benchmark, figure4, batches=3, batch_size=16)
    print_figure(data["render"])
    for workload, fractions in data["fractions"].items():
        shares = {name: fractions[name] for name in ("ff", "fc", "bc", "bf")}
        assert abs(sum(shares.values()) - 100.0) < 1e-6
        # The paper's headline observation: bf dominates (52-75 % there).
        assert shares["bf"] == max(shares.values()), workload
        assert shares["bf"] > 40.0, workload
        # Fully connected phases are comparatively cheap on CNN classifiers.
        assert shares["fc"] + shares["bc"] < shares["ff"] + shares["bf"], workload
