"""Table 1: qualitative comparison of FL solutions for heterogeneous settings.

The table itself is qualitative; this benchmark prints it and verifies its
measurable behavioural claims on a small heterogeneous workload:

* FedAvg/FedProx/FedNova do not adapt to resource heterogeneity, so their
  round durations track the slowest client;
* TiFL and Aergia actively reduce round durations;
* only Aergia does so via freeze/offload (non-zero offload count) rather
  than by restricting which clients participate.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import render_table1, table1_comparison
from repro.experiments.runner import run_configs
from repro.experiments.workloads import evaluation_config, scale_from_env


def _run_behavioural_check():
    scale = scale_from_env()
    configs = {
        algorithm: evaluation_config("mnist", algorithm, "noniid", scale)
        for algorithm in ("fedavg", "fedprox", "fednova", "tifl", "aergia")
    }
    return run_configs(configs)


def test_table1_claims(benchmark, print_figure):
    suite = run_once(benchmark, _run_behavioural_check)
    print_figure(render_table1())

    table = table1_comparison()
    assert table["Aergia"]["resource_heterogeneity"] == "++"
    assert table["TiFL"]["minimizes_training_time"] == "yes"
    assert table["FedAvg"]["minimizes_training_time"] == "no"

    results = suite.results
    # The heterogeneity-unaware algorithms all pay the same straggler cost:
    # their mean round durations are essentially identical.
    unaware = [results[a].mean_round_duration() for a in ("fedavg", "fedprox", "fednova")]
    assert max(unaware) <= min(unaware) * 1.05

    # The two training-time-minimising systems beat them.
    assert results["aergia"].mean_round_duration() < min(unaware)
    assert results["tifl"].mean_round_duration() < min(unaware)

    # Aergia is the only one that offloads; the others never do.
    assert results["aergia"].total_offloads() > 0
    assert all(results[a].total_offloads() == 0 for a in results if a != "aergia")
