"""Figure 8: distribution of per-round durations on FMNIST (non-IID).

The paper shows Aergia's round-duration density shifted towards shorter
rounds compared to FedAvg, FedProx, FedNova and TiFL.  The reproduction
compares the mean round durations and the distributions directly.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.experiments.figures import figure8


def test_fig8_round_duration_distribution(benchmark, print_figure):
    data = run_once(benchmark, figure8)
    print_figure(data["render"])
    means = data["mean_round_duration_s"]
    durations = {name: np.asarray(values) for name, values in data["round_durations"].items()}

    # Aergia's rounds are shorter than every synchronous, heterogeneity-unaware
    # baseline's — its density is shifted left, as in the paper.  (TiFL's
    # *per-round* durations can be short because each round only involves one
    # tier, but its total training time is larger; see bench_headline_claims.)
    assert all(means["aergia"] < means[name] for name in ("fedavg", "fedprox", "fednova"))

    # And its slowest round is no slower than FedAvg's slowest round.
    assert durations["aergia"].max() <= durations["fedavg"].max() + 1e-6
