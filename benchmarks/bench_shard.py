"""BENCH_shard: sharded multi-process simulation scaling + memory ceiling.

Thin wrapper over :func:`repro.simulation.shard_bench.run_shard_bench`
(also reachable as ``repro bench --shard``): runs the 1/2/4-shard
round-throughput ladder on a compute-heavy metro workload (with the
bitwise-parity invariant enforced inline), then a continent-scale run
asserting every worker's peak RSS stays bounded well below the parent's.

    python benchmarks/bench_shard.py            # full: metro ladder + continent
    python benchmarks/bench_shard.py --quick    # reduced ladder, CI-sized
"""

from __future__ import annotations

import argparse

import conftest  # noqa: F401  (makes repro importable from a source tree)

from repro.simulation.shard_bench import render_shard_bench, run_shard_bench


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced CI-sized ladder")
    parser.add_argument("--output", default="BENCH_shard.json", help="result JSON path")
    args = parser.parse_args()
    results = run_shard_bench(quick=args.quick, output=args.output)
    print(render_shard_bench(results))
    print(f"\nresults written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
