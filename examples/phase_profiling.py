"""Profile the four training phases of a CNN (the measurement behind Figure 4).

Aergia's design rests on one observation: the backward pass through the
feature (convolutional) layers dominates the cost of a local update, so
freezing those layers on a straggler removes most of its per-batch work.
This example reproduces the single-client profiling experiment on the
paper's five (dataset, network) pairs and prints the per-phase percentages.

Run with::

    python examples/phase_profiling.py
"""

from __future__ import annotations

import numpy as np

from repro.core.profiler import profile_model_phases
from repro.data.datasets import load_dataset
from repro.experiments.report import format_table
from repro.nn.architectures import build_model
from repro.nn.model import Phase

WORKLOADS = (
    ("cifar10", "cifar10-cnn"),
    ("cifar10", "cifar10-resnet"),
    ("cifar100", "cifar100-vgg"),
    ("cifar100", "cifar100-resnet"),
    ("fmnist", "fmnist-cnn"),
)


def main(batches: int = 3, batch_size: int = 16, verbose: bool = True) -> dict:
    rows = []
    results = {}
    for dataset_name, architecture in WORKLOADS:
        dataset = load_dataset(dataset_name, train_size=64, test_size=16, seed=7)
        model = build_model(architecture, rng=np.random.default_rng(7))
        profile = profile_model_phases(
            model, dataset.x_train, dataset.y_train, batches=batches, batch_size=batch_size
        )
        fractions = {phase.value: share * 100.0 for phase, share in profile.fractions().items()}
        results[architecture] = fractions
        rows.append(
            [f"{dataset_name}/{architecture}"]
            + [fractions[phase.value] for phase in Phase.ordered()]
        )
    if verbose:
        print(
            format_table(
                headers=["workload", "ff %", "fc %", "bc %", "bf %"],
                rows=rows,
                title="Share of a local update spent in each training phase",
                float_format="{:.1f}",
            )
        )
        print(
            "\nThe backward pass over the feature layers (bf) dominates, which is "
            "why Aergia offloads exactly that phase from stragglers to strong clients."
        )
    return results


if __name__ == "__main__":
    main()
