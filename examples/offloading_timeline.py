"""Trace one Aergia round in detail (the scenario illustrated in Figure 5).

Four clients participate in a round: two weak (slow CPUs) and two strong.
The script runs a single Aergia round and prints the timeline of the key
events — profile reports, scheduling decisions, freeze/offload transfers
and result submissions — so you can see the choreography of §3.3 and §4.1
in action.

Run with::

    python examples/offloading_timeline.py
"""

from __future__ import annotations

from repro.fl import ExperimentConfig
from repro.fl.config import ResourceConfig
from repro.fl.messages import MessageKind
from repro.fl.runtime import build_experiment


def main(verbose: bool = True) -> list:
    config = ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        algorithm="aergia",
        partition="iid",
        num_clients=4,
        rounds=1,
        local_updates=8,
        profile_batches=2,
        train_size=400,
        test_size=100,
        batch_size=16,
        resources=ResourceConfig(scheme="explicit", explicit_speeds=(0.12, 0.18, 0.9, 1.0)),
        seed=21,
    )
    handle = build_experiment(config)

    # Wrap the network's send method to record a human-readable timeline.
    timeline = []
    network = handle.cluster.network
    original_send = network.send

    def recording_send(sender, recipient, kind, payload=None, round_number=-1, size_bytes=None):
        message = original_send(
            sender, recipient, kind, payload=payload, round_number=round_number, size_bytes=size_bytes
        )
        interesting = {
            MessageKind.PROFILE_REPORT: "profile report",
            MessageKind.OFFLOAD_INSTRUCTION: "freeze+offload instruction",
            MessageKind.OFFLOAD_EXPECT: "offload notice",
            MessageKind.OFFLOADED_MODEL: "frozen model transfer",
            MessageKind.OFFLOAD_RESULT: "offloaded features returned",
            MessageKind.TRAIN_RESULT: "local result returned",
        }
        if kind in interesting:
            timeline.append((handle.cluster.env.now, f"{interesting[kind]}: {sender} -> {recipient}"))
        return message

    network.send = recording_send  # type: ignore[method-assign]
    result = handle.run()

    if verbose:
        print("Cluster speeds:", [p.speed_fraction for p in (handle.cluster.profile(i) for i in range(4))])
        print(f"Round finished at t={result.rounds[-1].end_time:.2f}s "
              f"with {result.total_offloads()} offload(s).\n")
        print("Timeline of the round (virtual seconds):")
        for when, what in timeline:
            print(f"  t={when:7.2f}s  {what}")
    return timeline


if __name__ == "__main__":
    main()
