"""Privacy-preserving dataset similarity and its effect on scheduling.

The federator must not learn the clients' class distributions, yet Aergia's
scheduler needs to know which clients hold *similar* data so that a
straggler's feature layers are trained on a compatible dataset.  The paper
solves this with an Intel SGX enclave; this example walks through the
reproduction of that flow:

1. partition a synthetic FMNIST dataset non-IID across clients,
2. attest the (simulated) enclave and submit the encrypted class
   distributions,
3. obtain the pair-wise EMD similarity matrix from the enclave,
4. run Aergia's scheduler with and without the similarity term and show how
   the offloading targets change.

Run with::

    python examples/noniid_similarity.py
"""

from __future__ import annotations

import numpy as np

from repro.core.enclave import SGXEnclave, seal_distribution
from repro.core.scheduler import ClientPerformance, schedule_offloading
from repro.data.datasets import synthetic_fmnist
from repro.data.partition import partition_noniid_label_skew
from repro.experiments.report import format_table


def main(num_clients: int = 6, verbose: bool = True) -> dict:
    dataset = synthetic_fmnist(train_size=150 * num_clients, test_size=100, seed=3)
    partitions = partition_noniid_label_skew(
        dataset, num_clients, classes_per_client=3, rng=np.random.default_rng(1)
    )

    # --- Enclave flow: the federator only ever sees the similarity matrix.
    enclave = SGXEnclave(seed=0)
    report = enclave.attest()
    assert report.verify(), "clients refuse to talk to an unattested enclave"
    for partition in partitions:
        sealed = seal_distribution(partition.client_id, partition.class_counts, report)
        enclave.submit_distribution(sealed)
    similarity = enclave.similarity_matrix()

    # --- A synthetic performance picture: client 0 is the straggler.
    batch_seconds = [4.0] + [0.5 + 0.05 * i for i in range(1, num_clients)]
    performances = [
        ClientPerformance(
            client_id=i,
            head_seconds=0.35 * t,
            tail_seconds=0.65 * t,
            feature_training_seconds=0.9 * t,
            remaining_batches=16,
        )
        for i, t in enumerate(batch_seconds)
    ]

    ignore_similarity = schedule_offloading(performances, similarity_factor=0.0)
    with_similarity = schedule_offloading(
        performances,
        similarity=similarity.matrix,
        similarity_client_ids=list(similarity.client_ids),
        similarity_factor=2.0,
    )

    rows = []
    for label, decision in (("f=0 (ignore data)", ignore_similarity), ("f=2 (use similarity)", with_similarity)):
        assignment = decision.plan.assignment_for(0)
        target = assignment.strong_client if assignment else None
        emd = similarity.value(0, target) if target is not None else float("nan")
        rows.append([label, target, emd])

    if verbose:
        print("Class distributions (only the enclave ever sees these):")
        for partition in partitions:
            print(f"  client {partition.client_id}: {partition.class_counts.tolist()}")
        print()
        print(
            format_table(
                headers=["scheduler", "straggler offloads to", "EMD(straggler, target)"],
                rows=rows,
                title="Effect of the similarity factor on the offloading target",
            )
        )
        print(
            "\nWith the similarity term enabled the scheduler prefers a strong client "
            "whose data distribution is close to the straggler's, at a small cost in "
            "estimated round time (Figure 9 of the paper quantifies this trade-off)."
        )
    return {
        "without_similarity_target": ignore_similarity.plan.as_dict().get(0),
        "with_similarity_target": with_similarity.plan.as_dict().get(0),
    }


if __name__ == "__main__":
    main()
