"""Straggler mitigation on a strongly heterogeneous cluster.

This example mirrors the scenario that motivates the paper: a cluster in
which a few clients are much slower than the rest (think old phones next to
workstations).  It runs FedAvg, TiFL, the deadline baseline and Aergia on
the same workload and reports, per algorithm:

* total training time for the same number of rounds,
* the mean round duration,
* the number of client updates dropped (deadline baseline only),
* the number of freeze/offload pairs (Aergia only),

plus, for Aergia, the actual offloading plan of the first round so you can
see which straggler was matched with which strong client.

Run with::

    python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.fl import ExperimentConfig
from repro.fl.config import ResourceConfig
from repro.fl.runtime import build_experiment


#: Three slow devices (0.1-0.2), three medium ones and four fast machines.
CLUSTER_SPEEDS = (0.1, 0.15, 0.2, 0.45, 0.5, 0.55, 0.9, 0.95, 1.0, 1.0)


def main(rounds: int = 3, verbose: bool = True) -> dict:
    base = ExperimentConfig(
        dataset="fmnist",
        architecture="fmnist-cnn",
        partition="noniid",
        classes_per_client=3,
        num_clients=len(CLUSTER_SPEEDS),
        rounds=rounds,
        local_updates=8,
        profile_batches=2,
        train_size=100 * len(CLUSTER_SPEEDS),
        test_size=250,
        batch_size=16,
        resources=ResourceConfig(scheme="explicit", explicit_speeds=CLUSTER_SPEEDS),
        seed=7,
    )

    rows = []
    summaries = {}
    aergia_plan = None
    for algorithm in ("fedavg", "tifl", "deadline", "aergia"):
        config = base.with_overrides(algorithm=algorithm)
        if algorithm == "deadline":
            # A deadline roughly equal to the median client's round time.
            config = config.with_overrides(deadline_seconds=8.0)
        handle = build_experiment(config)
        result = handle.run()
        summaries[algorithm] = result.summary()
        rows.append(
            [
                algorithm,
                result.total_time,
                result.mean_round_duration(),
                result.final_accuracy,
                result.total_dropped(),
                result.total_offloads(),
            ]
        )
        if algorithm == "aergia":
            plans = getattr(handle.federator, "plans", {})
            aergia_plan = plans.get(1)

    if verbose:
        print(
            format_table(
                headers=["algorithm", "total_time_s", "mean_round_s", "accuracy", "dropped", "offloads"],
                rows=rows,
                title=f"Heterogeneous cluster, speeds={CLUSTER_SPEEDS}",
            )
        )
        if aergia_plan is not None and aergia_plan.num_offloads:
            print("\nAergia's offloading plan for round 1:")
            for assignment in aergia_plan:
                print(
                    f"  straggler client {assignment.weak_client} -> strong client "
                    f"{assignment.strong_client} ({assignment.offload_batches} offloaded batches, "
                    f"estimated pair completion {assignment.estimated_duration:.2f}s)"
                )
    return summaries


if __name__ == "__main__":
    main()
