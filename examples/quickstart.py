"""Quickstart: compare Aergia with FedAvg on a small heterogeneous cluster.

Run with::

    python examples/quickstart.py

The script builds a synthetic MNIST-like federated workload, runs the same
number of communication rounds with FedAvg and with Aergia, and prints the
final accuracy, the total (virtual) training time and the number of
freeze/offload operations Aergia scheduled.
"""

from __future__ import annotations

from repro.experiments.report import render_summaries
from repro.fl import ExperimentConfig, run_experiment
from repro.fl.config import ResourceConfig


def main(rounds: int = 4, num_clients: int = 8, verbose: bool = True) -> dict:
    """Run the comparison and return the two experiment summaries."""
    base = ExperimentConfig(
        dataset="mnist",
        architecture="mnist-cnn",
        partition="noniid",
        classes_per_client=3,
        num_clients=num_clients,
        rounds=rounds,
        local_updates=8,
        profile_batches=2,
        train_size=120 * num_clients,
        test_size=300,
        batch_size=16,
        # A realistic mix: speeds drawn uniformly from [0.1, 1.0] of a core,
        # exactly like the paper's heterogeneous resource setup (§5.1).
        resources=ResourceConfig(scheme="uniform", low=0.1, high=1.0),
        seed=42,
    )

    results = {}
    for algorithm in ("fedavg", "aergia"):
        result = run_experiment(base.with_overrides(algorithm=algorithm))
        results[algorithm] = result

    summaries = {name: result.summary() for name, result in results.items()}
    if verbose:
        print(render_summaries(summaries, title="Quickstart: FedAvg vs Aergia (non-IID MNIST)"))
        saved = 1.0 - results["aergia"].total_time / results["fedavg"].total_time
        print(
            f"\nAergia finished the same {rounds} rounds "
            f"{saved * 100.0:.1f}% faster than FedAvg "
            f"with {results['aergia'].total_offloads()} offloads."
        )
    return summaries


if __name__ == "__main__":
    main()
