"""Setuptools entry point for the Aergia reproduction.

Installs the ``repro`` package from ``src/`` and the ``repro`` console
script (equivalent to ``python -m repro``).  Kept as a plain ``setup.py``
so legacy editable installs (``pip install -e . --no-use-pep517``) work in
offline environments where the ``wheel`` package is unavailable.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

VERSION = re.search(
    r'^__version__ = "(.+?)"',
    (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(),
    re.MULTILINE,
).group(1)

setup(
    name="repro-aergia",
    version=VERSION,
    description="Reproduction of Aergia (Middleware '22): offloading the laggards in federated learning",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
